"""Unit tests for the shared run-geometry arithmetic (repro.util.linemath).

These pin the predicate both the dynamic race detector and the static
H002 layout check depend on; any change here must keep the sanitizer's
behaviour bit-identical (tests/test_sanitize.py pins that end to end).
"""

from __future__ import annotations

from repro.util.linemath import (
    Run,
    line_offsets,
    lines_touched,
    make_run,
    run_contains,
    runs_conflict,
    runs_share_line,
)


def _brute_addrs(run):
    if run.stride == 0:
        return {run.lo}
    return {run.lo + k * run.stride for k in range(run.count)}


class TestMakeRun:
    def test_positive_stride(self):
        r = make_run(100, 4, 8)
        assert (r.lo, r.hi, r.stride, r.count) == (100, 125, 8, 4)

    def test_negative_stride_normalizes_ascending(self):
        r = make_run(100, 4, -8)
        assert (r.lo, r.hi, r.stride, r.count) == (76, 101, 8, 4)
        assert _brute_addrs(r) == {76, 84, 92, 100}

    def test_single_access(self):
        r = make_run(50, 1, 64)
        assert (r.lo, r.hi, r.stride, r.count) == (50, 51, 0, 1)

    def test_zero_stride_collapses(self):
        r = make_run(50, 9, 0)
        assert (r.lo, r.hi, r.stride, r.count) == (50, 51, 0, 1)


class TestRunContains:
    def test_on_and_off_progression(self):
        r = make_run(0, 5, 8)  # {0, 8, 16, 24, 32}
        assert run_contains(r, 16)
        assert not run_contains(r, 17)
        assert not run_contains(r, 40)  # past hi

    def test_point_run(self):
        r = make_run(7, 1, 0)
        assert run_contains(r, 7)
        assert not run_contains(r, 8)


class TestRunsConflict:
    def test_disjoint_windows(self):
        assert not runs_conflict(make_run(0, 4, 8), make_run(100, 4, 8))

    def test_equal_stride_same_phase(self):
        assert runs_conflict(make_run(0, 8, 8), make_run(16, 8, 8))

    def test_equal_stride_different_phase(self):
        # Interleaved but never touching: {0,8,..} vs {4,12,..}
        assert not runs_conflict(make_run(0, 8, 8), make_run(4, 8, 8))

    def test_point_vs_run(self):
        a = make_run(24, 1, 0)
        assert runs_conflict(a, make_run(0, 5, 8))
        assert not runs_conflict(a, make_run(1, 5, 8))

    def test_mixed_strides_exact_hit(self):
        # {0,6,12,18,24} vs {8,12,16} share 12.
        assert runs_conflict(make_run(0, 5, 6), make_run(8, 3, 4))

    def test_mixed_strides_gcd_conservative(self):
        # gcd(6,4)=2 divides every even delta, so this may over-report —
        # the documented conservative polarity.  Pin that a *provable*
        # miss (odd delta, even gcd) is still rejected.
        assert not runs_conflict(make_run(0, 5, 6), make_run(7, 3, 4))

    def test_symmetry_matches_brute_force(self):
        runs = [
            make_run(0, 6, 8),
            make_run(4, 6, 8),
            make_run(16, 1, 0),
            make_run(3, 10, 3),
        ]
        for a in runs:
            for b in runs:
                if a is b:
                    continue
                truth = bool(_brute_addrs(a) & _brute_addrs(b))
                got = runs_conflict(a, b)
                assert got == runs_conflict(b, a)
                if truth:  # conservative: never misses a true conflict
                    assert got


class TestLinesTouched:
    def test_dense_run_spans_lines(self):
        # 64B lines: [0, 200) with stride 4 covers lines 0..3.
        r = make_run(0, 50, 4)
        assert lines_touched(r, 6) == [0, 1, 2, 3]

    def test_sparse_run_exact_lines(self):
        # stride 256 = 4 lines apart.
        r = make_run(0, 4, 256)
        assert lines_touched(r, 6) == [0, 4, 8, 12]

    def test_point(self):
        assert lines_touched(make_run(130, 1, 0), 6) == [2]


class TestLineOffsets:
    def test_offsets_within_one_line(self):
        r = make_run(64, 4, 8)  # 64, 72, 80, 88 — all in line 1
        assert line_offsets(r, 64, 6) == [0, 8, 16, 24]
        assert line_offsets(r, 0, 6) == []
        assert line_offsets(r, 128, 6) == []

    def test_run_straddling_line_boundary(self):
        r = make_run(56, 4, 8)  # 56, 64, 72, 80
        assert line_offsets(r, 0, 6) == [56]
        assert line_offsets(r, 64, 6) == [0, 8, 16]

    def test_point_run(self):
        assert line_offsets(make_run(70, 1, 0), 64, 6) == [6]
        assert line_offsets(make_run(70, 1, 0), 0, 6) == []


class TestRunsShareLine:
    def test_per_thread_slots_in_one_line(self):
        # Two 8B thread slots in one 64B line: the classic counter array.
        a = make_run(0, 1, 0)
        b = make_run(8, 1, 0)
        assert runs_share_line(a, b, 6) == 0

    def test_conflicting_runs_are_not_sharing(self):
        # A common byte is a race, not false sharing.
        a = make_run(0, 4, 8)
        assert runs_share_line(a, a, 6) is None

    def test_disjoint_lines(self):
        assert runs_share_line(make_run(0, 1, 0), make_run(64, 1, 0), 6) is None

    def test_chunk_boundary_line(self):
        # Adjacent dense chunks meet in the boundary line — detected, and
        # the caller decides whether boundary-only sharing matters.
        a = make_run(0, 100, 1)  # [0, 100)
        b = make_run(100, 100, 1)  # [100, 200)
        assert runs_share_line(a, b, 6) == 64

    def test_large_dense_runs_fast_path(self):
        # Same stride, different phase: byte-disjoint, but their dense
        # spans overlap across many lines (exercises the interval fast
        # path for runs touching > 64 lines).
        a = Run(0, 8185, 8, 1024)
        b = Run(8004, 16000, 8, 1000)
        assert not runs_conflict(a, b)
        assert runs_share_line(a, b, 6) == (8004 >> 6) << 6
