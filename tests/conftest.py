"""Shared fixtures: a tiny machine and a minimal simulated program."""

from __future__ import annotations

import pytest

from repro import Ctx, DataCentricProfiler, LoadModule, SimProcess, SourceFile, tiny_machine
from repro.sim.program import Function


class MiniProgram:
    """A process with one executable module and a handful of functions.

    Functions: ``main`` (lines 1-60), ``work`` (lines 100-159) and
    ``alloc_shim`` (lines 200-219) — enough structure for call paths,
    allocation contexts, and line-level attribution in tests.
    """

    def __init__(self, machine=None, pid: int = 0):
        self.machine = machine or tiny_machine()
        self.process = SimProcess(self.machine, pid=pid)
        self.source = SourceFile(
            "mini.c",
            {
                10: "x = a[i];",
                20: "buf = malloc(n);",
                110: "y = b[j];",
                210: "return malloc(size);",
            },
        )
        self.exe = LoadModule("mini.exe", is_executable=True)
        self.main = self.exe.add_function("main", self.source, 1, 60)
        self.work = self.exe.add_function("work", self.source, 100, 60)
        self.alloc_shim = self.exe.add_function("alloc_shim", self.source, 200, 20)
        self.bss = self.exe.add_static("g_table", 1 << 16, self.source, 5)
        self.process.load_module(self.exe)

    def master_ctx(self) -> Ctx:
        ctx = Ctx(self.process, self.process.master)
        if not self.process.master.frames:
            ctx.enter(self.main)
        return ctx


@pytest.fixture
def machine():
    return tiny_machine()


@pytest.fixture
def mini():
    return MiniProgram()


@pytest.fixture
def profiled_mini():
    prog = MiniProgram()
    profiler = DataCentricProfiler(prog.process).attach()
    return prog, profiler
