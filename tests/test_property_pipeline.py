"""Cross-cutting property-based tests with hypothesis.

Fuzzes randomly generated CCT forests through the serialize -> merge ->
view pipeline, and random access streams through the memory hierarchy,
checking the structural invariants the whole system rests on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import (
    HEAP_MARKER_INFO,
    HEAP_MARKER_KEY,
    KIND_FRAME,
    KIND_IP,
)
from repro.core.merge import merge_profiles, reduction_tree_merge
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.core.views import build_bottom_up, build_top_down
from repro.machine.hierarchy import LVL_LMEM, LVL_RMEM
from repro.machine.presets import tiny_machine
from repro.pmu.sample import Sample


# -- strategies -----------------------------------------------------------------

fn_names = st.sampled_from(["main", "solve", "alloc", "relax", "interp"])
lines = st.integers(1, 9)
latencies = st.integers(1, 400)
levels = st.integers(0, 4)


@st.composite
def samples(draw):
    return Sample(
        event="F",
        precise_ip=1,
        interrupt_ip=1,
        ea=draw(st.integers(0, 1 << 20)),
        latency=draw(latencies),
        level=draw(levels),
        tlb_miss=draw(st.booleans()),
        is_store=draw(st.booleans()),
        period=draw(st.sampled_from([16, 64, 256])),
    )


@st.composite
def heap_paths(draw):
    """An allocation path + marker + access path, as the profiler builds."""
    alloc_frames = draw(st.lists(fn_names, min_size=1, max_size=3))
    alloc_line = draw(lines)
    access_frames = draw(st.lists(fn_names, min_size=0, max_size=2))
    access_line = draw(lines)
    path = [((KIND_FRAME, f, 0), None) for f in alloc_frames]
    path.append(((KIND_IP, alloc_frames[-1], alloc_line, 0),
                 {"var": f"v{alloc_line}", "alloc_kind": "malloc",
                  "location": f"x.c:{alloc_line}"}))
    path.append((HEAP_MARKER_KEY, HEAP_MARKER_INFO))
    path.extend(((KIND_FRAME, f, 4), None) for f in access_frames)
    path.append(((KIND_IP, access_frames[-1] if access_frames else "main",
                  access_line, 0), None))
    return path


@st.composite
def thread_profiles(draw, name: str):
    profile = ThreadProfile(name)
    n = draw(st.integers(0, 12))
    for _ in range(n):
        path = draw(heap_paths())
        profile.cct(StorageClass.HEAP).add_sample_at(path, draw(samples()))
    return profile


@st.composite
def profile_dbs(draw, n_procs=st.integers(1, 5)):
    count = draw(n_procs)
    dbs = []
    for p in range(count):
        db = ProfileDB(f"p{p}")
        for t in range(draw(st.integers(1, 3))):
            db.add_thread(draw(thread_profiles(f"p{p}.t{t}")))
        dbs.append(db)
    return dbs


# -- pipeline properties -----------------------------------------------------------


class TestFuzzPipeline:
    @given(profile_dbs())
    @settings(max_examples=40, deadline=None)
    def test_serialize_roundtrip_any_forest(self, dbs):
        for db in dbs:
            back = ProfileDB.from_bytes(db.to_bytes())
            assert back.node_count() == db.node_count()
            for name, profile in db.threads.items():
                for storage in profile.storage_classes():
                    assert (
                        back.threads[name].cct(storage).root.to_dict()
                        == profile.cct(storage).root.to_dict()
                    )

    @given(profile_dbs())
    @settings(max_examples=40, deadline=None)
    def test_merge_conserves_every_metric(self, dbs):
        def totals(kind):
            return sum(
                p.cct(s).total(kind)
                for db in dbs
                for p in db.all_profiles()
                for s in p.storage_classes()
            )

        before = {k: totals(k) for k in MetricKind}
        merged = merge_profiles(dbs)
        profile = next(iter(merged.threads.values()))
        for kind in MetricKind:
            after = sum(
                profile.cct(s).total(kind) for s in profile.storage_classes()
            )
            assert after == before[kind]

    @given(profile_dbs())
    @settings(max_examples=30, deadline=None)
    def test_tree_merge_equals_sequential_merge(self, dbs):
        import copy

        seq = merge_profiles(copy.deepcopy(dbs))
        tree, _ = reduction_tree_merge(copy.deepcopy(dbs))
        p_seq = next(iter(seq.threads.values()))
        p_tree = next(iter(tree.threads.values()))
        for storage in set(p_seq.storage_classes()) | set(p_tree.storage_classes()):
            assert (
                p_tree.cct(storage).root.to_dict()
                == p_seq.cct(storage).root.to_dict()
            )

    @given(profile_dbs())
    @settings(max_examples=30, deadline=None)
    def test_views_partition_the_totals(self, dbs):
        merged = merge_profiles(dbs)
        profile = next(iter(merged.threads.values()))
        for kind in (MetricKind.SAMPLES, MetricKind.LATENCY, MetricKind.REMOTE):
            view = build_top_down(profile, kind)
            # Variables are disjoint subtrees: their values sum to at most
            # the grand total, and heap variables sum exactly to the heap
            # total (every heap sample sits under some marker).
            assert sum(v.value for v in view.variables) <= view.grand_total
            heap_sum = sum(
                v.value for v in view.variables if v.storage is StorageClass.HEAP
            )
            assert heap_sum == view.storage_totals[StorageClass.HEAP]
            bu = build_bottom_up(profile, kind)
            assert sum(s.value for s in bu.sites) == heap_sum

    @given(profile_dbs())
    @settings(max_examples=30, deadline=None)
    def test_view_shares_well_formed(self, dbs):
        merged = merge_profiles(dbs)
        profile = next(iter(merged.threads.values()))
        view = build_top_down(profile, MetricKind.SAMPLES)
        for var in view.variables:
            assert 0 < var.share <= 1.0 or view.grand_total == 0
            assert 0.0 <= var.remote_fraction <= 1.0
            assert 0.0 <= var.dram_remote_fraction <= 1.0
            assert var.samples >= 1


class TestHierarchyProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),                 # hw thread
                st.integers(0, 1 << 18),           # address
                st.integers(0, 1),                 # home node
                st.booleans(),                     # store?
            ),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_access_accounting_invariants(self, accesses):
        machine = tiny_machine()
        h = machine.hierarchy
        for hw, addr, home, store in accesses:
            lat, lvl, _tlb = h.access(hw, addr, home, store)
            assert lat > 0
            assert 0 <= lvl <= 4
        assert h.total_accesses() == len(accesses)
        assert sum(h.level_counts) == len(accesses)
        # DRAM accounting agrees between hierarchy and memory manager.
        dram = h.level_counts[LVL_LMEM] + h.level_counts[LVL_RMEM]
        assert h.memmgr.total_dram_accesses() == dram
        assert h.memmgr.total_remote_accesses() == h.level_counts[LVL_RMEM]

    @given(
        st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_repeat_of_any_trace_hits_no_worse(self, addrs, prefetch):
        """Replaying a trace immediately can only improve locality."""
        machine = tiny_machine(prefetch=prefetch)
        h = machine.hierarchy
        first = sum(h.access(0, a, 0)[0] for a in addrs)
        second = sum(h.access(0, a, 0)[0] for a in addrs)
        assert second <= first
