"""Tests for static counter prediction (repro.staticcheck.predict).

Pins (1) the closed-form counter math on the tiny-machine defect seeds
(exact sample counts per level, the 50% remote split of a master
first-touch on a node-spanning team, the H002 store elevation to L3),
(2) the virtual-fix impacts that rank ``hpcview advise``, (3) the
acceptance loop over all five bundled apps — static and dynamic
evaluations of the same formula DAG agree on the top-level verdict for
every original-variant pathology variable, with nw's remote-DRAM
fraction within the 25% error bound — (4) reconciliation edge cases
(empty profile, zero-weight model, sub-threshold dynamic variables,
stripped metadata), and (5) that a per-preset ``min_share`` override
changes both the static analyzer and the dynamic triage through the
one shared registry.
"""

from __future__ import annotations

import importlib.util
from dataclasses import replace
from importlib import import_module
from pathlib import Path

import pytest

from repro import Ctx, SimProcess, tiny_machine
from repro.core.analyzer import Analyzer
from repro.core.metrics import MetricKind
from repro.machine.presets import Machine, tiny_spec
from repro.metrics.boundness import MIN_SHARE, REGISTRY
from repro.metrics.sources import StaticSource
from repro.sim.openmp import omp_chunk
from repro.staticcheck import (
    OmpBlockPattern,
    StaticModel,
    analyze_model,
    build_static_model,
    predict_model,
    reconcile,
    reconcile_metrics,
    report_with_impacts,
)
from repro.staticcheck.predict import (
    condition_counters,
    model_source,
    source_vocabulary,
    variable_source,
)

REPO = Path(__file__).resolve().parents[1]

# app -> the original-variant pathology variables (the H001 set the
# findings golden in test_staticcheck.py pins).
PATHOLOGY_H001 = {
    "nw": ("input_itemsets", "referrence"),
    "streamcluster": ("block",),
    "lulesh": (
        "m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd",
        "m_fx", "m_fy", "m_fz", "m_e", "m_p", "m_q",
    ),
    "amg2006": (
        "A_diag_i", "A_diag_j", "A_diag_data",
        "S_diag_i", "S_diag_j",
        "P_diag_j", "P_diag_data",
    ),
    "sweep3d": (),
}

FIXED_VARIANTS = {
    "nw": "libnuma",
    "streamcluster": "parallel-init",
    "lulesh": "both",
}


def _load_defects():
    spec = importlib.util.spec_from_file_location(
        "defect_corpus_predict", REPO / "examples" / "defects.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def corpus():
    return _load_defects()


@pytest.fixture(scope="module")
def experiments():
    """One rank-0 dynamic profile per bundled app (smoke preset)."""
    out = {}
    for app in PATHOLOGY_H001:
        run_rank = import_module(f"repro.apps.{app}").run_rank
        out[app] = Analyzer(app).add(run_rank(0, 1)).analyze()
    return out


class TestPredictionMath:
    """Closed-form counters on the tiny-machine seeds (pinned exactly)."""

    def test_master_first_touch_counters(self, corpus):
        # table: 64 KiB, 4 threads on 2 nodes, master first touch.
        # 1024 cold line misses all go to DRAM; half the team sits on
        # the non-home node, so the DRAM traffic splits 50/50.
        pred = predict_model(corpus.STATIC_SEEDS["master_first_touch"]())
        table = pred.variables["table"]
        c = table.counters
        assert c["samples"] == 8192.0
        assert c["l1_samples"] == 7168.0
        assert c["lmem_samples"] == 512.0
        assert c["rmem_samples"] == 512.0
        assert c["tlb_miss_samples"] == 16.0
        # tiny's two nodes sit on different sockets: all remote is 2-hop.
        assert c["hop1_samples"] == 0.0
        assert c["hop2_samples"] == 512.0
        remote = c["rmem_samples"] / (c["lmem_samples"] + c["rmem_samples"])
        assert remote == 0.5

    def test_worker_first_touch_predicts_local(self, corpus):
        pred = predict_model(corpus.STATIC_SEEDS["clean_static"]())
        grid = pred.variables["grid"]
        assert grid.counters["rmem_samples"] == 0.0
        assert grid.counters["lmem_samples"] > 0.0

    def test_sharing_stores_elevated_to_l3(self, corpus):
        pred = predict_model(corpus.STATIC_SEEDS["false_sharing_slots"]())
        counters = pred.variables["counters"]
        assert counters.sharing_l3 > 0.0
        assert counters.counters["l3_samples"] == counters.sharing_l3
        fixed = counters.fixed_h002()
        assert fixed["l3_samples"] == 0.0
        assert fixed["l1_samples"] == (
            counters.counters["l1_samples"] + counters.sharing_l3
        )

    def test_fixed_h001_rehomes_remote_traffic(self, corpus):
        pred = predict_model(corpus.STATIC_SEEDS["master_first_touch"]())
        table = pred.variables["table"]
        fixed = table.fixed_h001()
        assert fixed["rmem_samples"] == 0.0
        assert fixed["hop1_samples"] == 0.0 and fixed["hop2_samples"] == 0.0
        assert fixed["lmem_samples"] == (
            table.counters["lmem_samples"] + table.counters["rmem_samples"]
        )

    def test_sources_carry_override_keys_and_share(self, corpus):
        pred = predict_model(corpus.STATIC_SEEDS["master_first_touch"]())
        assert pred.override_keys == ("tiny", "static")
        whole = model_source(pred)
        assert whole.override_keys == ("tiny", "static")
        var = variable_source(pred, "table")
        assert var.counter("metric_share") == pred.variables["table"].share

    def test_condition_counters_rmem_only(self):
        counters = {
            "samples": 100.0, "l1_samples": 60.0, "l2_samples": 10.0,
            "l3_samples": 5.0, "lmem_samples": 5.0, "rmem_samples": 20.0,
            "hop1_samples": 10.0, "hop2_samples": 10.0,
            "tlb_miss_samples": 10.0,
        }
        out = condition_counters(counters, "rmem-only")
        assert out["samples"] == 20.0
        for name in ("l1_samples", "l2_samples", "l3_samples", "lmem_samples"):
            assert out[name] == 0.0
        assert out["rmem_samples"] == 20.0
        assert out["tlb_miss_samples"] == pytest.approx(2.0)
        assert condition_counters(counters, "all") == counters
        with pytest.raises(ValueError):
            condition_counters(counters, "l1-only")

    def test_source_vocabulary_detection(self):
        rmem_only = StaticSource(
            {"samples": 8.0, "rmem_samples": 8.0, "l1_samples": 0.0,
             "lmem_samples": 0.0},
            kind="profile",
        )
        assert source_vocabulary(rmem_only) == "rmem-only"
        full = StaticSource(
            {"samples": 8.0, "rmem_samples": 2.0, "l1_samples": 6.0},
            kind="profile",
        )
        assert source_vocabulary(full) == "all"


class TestCrossSiteReuse:
    """The shared-cold-miss term: grouping semantics and error budgets."""

    def test_nw_itemsets_store_rides_the_load_sweep(self):
        # input_itemsets' load (164) and store (165) co-sweep the array
        # inside one region body: the store's cold misses are served at
        # L1, halving the variable's predicted DRAM traffic.
        model = build_static_model("nw")
        pred = predict_model(model)
        assert pred.reuse == {"input_itemsets": {1: "l1"}}
        off = predict_model(model, cross_site_reuse=False)
        assert off.reuse == {}
        with_c = pred.variables["input_itemsets"].counters
        without_c = off.variables["input_itemsets"].counters
        assert with_c["rmem_samples"] == without_c["rmem_samples"] / 2
        assert with_c["samples"] == without_c["samples"]

    def test_streamcluster_groups_span_the_two_regions(self):
        # point.p is read by both pgain regions; the whole-model working
        # set still fits L1, so the second region re-finds the lines.
        pred = predict_model(build_static_model("streamcluster"))
        assert pred.reuse == {"point.p": {1: "l1"}, "scratch": {1: "l1"}}

    def test_serial_sites_never_group(self):
        # sweep3d is pure MPI (team of 1 everywhere): Flux's load+store
        # pair and Src's two anchors must keep their own cold charges.
        pred = predict_model(build_static_model("sweep3d"))
        assert pred.reuse == {}

    def test_cross_phase_sweeps_get_no_credit(self):
        # amg's matrix arrays are swept by the serial builder, the relax
        # region and the interp region; between phases the whole working
        # set streams through, so nothing survives to be re-found.
        pred = predict_model(build_static_model("amg2006"))
        assert pred.reuse == {}

    def _ab(self, experiments, app):
        model = build_static_model(app)
        exp = experiments[app]
        return tuple(
            reconcile_metrics(
                model, exp, predict_model(model, cross_site_reuse=on)
            )
            for on in (False, True)
        )

    @pytest.mark.parametrize(
        "app,budget", [("nw", 0.20), ("streamcluster", 0.35)]
    )
    def test_reuse_strictly_improves_remote_share_ranking(
        self, experiments, app, budget
    ):
        # The paper's Figure-11-style split: without the reuse term the
        # double-counted cold misses invert nw's referrence-vs-itemsets
        # ranking and dilute streamcluster's block share.
        without, with_reuse = self._ab(experiments, app)
        assert with_reuse.mean_share_error < without.mean_share_error
        assert with_reuse.mean_share_error <= budget

    @pytest.mark.parametrize(
        "app,budgets",
        [
            ("nw", {"tlb_intensity": 0.95}),
            ("streamcluster", {"tlb_intensity": 0.99}),
            (
                "lulesh",
                {
                    "dram_intensity": 0.85,
                    "remote_dram_fraction": 0.35,
                    "tlb_intensity": 0.25,
                },
            ),
            ("amg2006", {"tlb_intensity": 0.55}),
            ("sweep3d", {"dram_intensity": 0.80, "tlb_intensity": 0.05}),
        ],
    )
    def test_per_metric_budgets_hold_with_reuse(
        self, experiments, app, budgets
    ):
        # No-regression bounds for every app, asserted on the reuse-on
        # predictor (the default reconcile path).
        _, with_reuse = self._ab(experiments, app)
        for metric, budget in budgets.items():
            assert with_reuse.mean_rel_error(metric) <= budget, (
                f"{app}:{metric} = {with_reuse.mean_rel_error(metric):.4f} "
                f"exceeds budget {budget}"
            )

    @pytest.mark.parametrize("app", sorted(PATHOLOGY_H001))
    def test_reuse_never_drops_compared_variables(self, experiments, app):
        # Redirected cold misses must not zero a variable out of the
        # comparison (the failure mode of crediting a serial setup
        # sweep): coverage is identical with and without the term.
        without, with_reuse = self._ab(experiments, app)
        assert {vm.variable for vm in with_reuse.variables} == {
            vm.variable for vm in without.variables
        }


class TestPredictedImpacts:
    def test_h001_seed_impact_positive(self, corpus):
        model = corpus.STATIC_SEEDS["master_first_touch"]()
        report = report_with_impacts(model, analyze_model(model))
        (finding,) = [f for f in report.findings if f.code == "H001"]
        assert finding.predicted_impact > 0.0

    def test_h002_seed_impact_positive(self, corpus):
        model = corpus.STATIC_SEEDS["false_sharing_slots"]()
        report = report_with_impacts(model, analyze_model(model))
        (finding,) = [f for f in report.findings if f.code == "H002"]
        assert finding.predicted_impact > 0.0

    def test_h003_h004_keep_zero_impact(self, corpus):
        # No counter-level fix model for leak/dead-alloc hazards.
        for seed in ("parallel_no_free", "dead_alloc"):
            model = corpus.STATIC_SEEDS[seed]()
            report = report_with_impacts(model, analyze_model(model))
            assert all(f.predicted_impact == 0.0 for f in report.findings)

    @pytest.mark.parametrize("app", sorted(PATHOLOGY_H001))
    def test_original_h001_findings_carry_positive_impact(self, app):
        model = build_static_model(app)
        report = report_with_impacts(model, analyze_model(model))
        h001 = [f for f in report.findings if f.code == "H001"]
        assert len(h001) == len(PATHOLOGY_H001[app])
        assert all(f.predicted_impact > 0.0 for f in h001)

    @pytest.mark.parametrize("app", sorted(FIXED_VARIANTS))
    def test_fixed_variants_predict_clean(self, app):
        model = build_static_model(app, FIXED_VARIANTS[app])
        report = report_with_impacts(model, analyze_model(model))
        assert not [f for f in report.findings if f.code in ("H001", "H002")]


class TestFiveAppAgreement:
    """Static vs dynamic DAG evaluation over the same formula nodes."""

    @pytest.mark.parametrize("app", sorted(PATHOLOGY_H001))
    def test_pathology_verdicts_agree(self, experiments, app):
        model = build_static_model(app)
        rec = reconcile_metrics(model, experiments[app])
        compared = {vm.variable: vm for vm in rec.variables}
        for variable in PATHOLOGY_H001[app]:
            vm = compared.get(variable)
            assert vm is not None, f"{app}:{variable} was not compared"
            assert vm.agree, (
                f"{app}:{variable} verdicts disagree: "
                f"static={vm.static_verdict} dynamic={vm.dynamic_verdict}"
            )
            assert vm.static_verdict == "numa"

    def test_nw_remote_dram_fraction_within_bound(self, experiments):
        rec = reconcile_metrics(build_static_model("nw"), experiments["nw"])
        for variable in PATHOLOGY_H001["nw"]:
            vm = rec.for_variable(variable)
            assert vm is not None
            delta = vm.delta("remote_dram_fraction")
            assert delta is not None
            assert delta.rel_error <= 0.25

    def test_marked_event_profiles_condition_the_vocabulary(self, experiments):
        # nw samples via a marked remote-DRAM event: the comparison must
        # run in the restricted vocabulary, where static and dynamic
        # remote fractions are both 1.0 by construction.
        rec = reconcile_metrics(build_static_model("nw"), experiments["nw"])
        assert rec.vocabulary == "rmem-only"
        for vm in rec.variables:
            delta = vm.delta("remote_dram_fraction")
            assert delta.static_value == pytest.approx(1.0)
            assert delta.dynamic_value == pytest.approx(1.0)

    def test_full_vocabulary_app_compares_unconditioned(self, experiments):
        rec = reconcile_metrics(
            build_static_model("lulesh"), experiments["lulesh"]
        )
        assert rec.vocabulary == "all"


def _profile_with_minor_remote_var(corpus):
    """A twin of the H001 seed plus a second, lower-share remote variable.

    ``table`` dominates (~80% of latency); ``minor`` is also 100%
    remote-dominant but holds only ~20% share — the knob the
    sub-threshold reconciliation test turns.
    """
    from repro.core.profiler import DataCentricProfiler
    from repro.pmu.events import PM_MRK_DATA_FROM_RMEM
    from repro.pmu.marked import MarkedEventEngine

    n_table, n_minor = 8192, 1024
    machine = tiny_machine()
    process = SimProcess(machine, name="defect-minor_remote")
    profiler = DataCentricProfiler(process).attach()
    process.pmu = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=8, seed=0x51A7)
    main_fn, region_fn = corpus._static_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    table = ctx.calloc(n_table * 8, line=10, var="table")
    minor = ctx.calloc(n_minor * 8, line=20, var="minor")

    def worker(wctx, tid):
        ip = wctx.ip(110)
        for i in omp_chunk(n_table, 4, tid):
            wctx.load_ip(table + i * 8, ip)
            if i % 256 == 0:
                yield
        if tid == 3:
            ip2 = wctx.ip(111)
            for i in range(n_minor):
                wctx.load_ip(minor + i * 8, ip2)
        yield

    ctx.parallel(region_fn, worker, 4, line=50)
    ctx.free(table, line=40)
    ctx.free(minor, line=40)
    ctx.leave()
    return profiler.finalize()


class TestReconcileEdgeCases:
    def test_empty_profile_labels_predictions_no_data(self, corpus):
        machine = tiny_machine()
        process = SimProcess(machine, name="empty")
        from repro.core.profiler import DataCentricProfiler

        profiler = DataCentricProfiler(process).attach()
        corpus._static_image(process)
        exp = Analyzer("empty").add(profiler.finalize()).analyze()
        model = corpus.STATIC_SEEDS["master_first_touch"]()
        rec = reconcile(analyze_model(model), exp)
        assert [(v.label, v.variable) for v in rec.verdicts] == [
            ("no-data", "table")
        ]
        assert rec.n_missed == 0
        # no-data counts against neither precision nor recall.
        assert rec.precision == 1.0 and rec.recall == 1.0
        assert reconcile_metrics(model, exp).variables == []

    def test_zero_weight_model(self, corpus):
        model = corpus._static_model("zero_weight")
        model.alloc("main", 10, "idle", 4096)
        model.free("main", 40, "idle")
        report = analyze_model(model)
        assert report.findings == []
        pred = predict_model(model)
        assert pred.variables["idle"].share == 0.0
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        exp = Analyzer("defects").add(db).analyze()
        rec = reconcile(report, exp)
        # Nothing predicted; the dynamic hot spot surfaces as the miss.
        assert [(v.label, v.variable) for v in rec.verdicts] == [
            ("missed", "table")
        ]
        assert reconcile_metrics(model, exp).variables == []

    def test_sub_threshold_dynamic_variable_not_missed(self, corpus):
        db = _profile_with_minor_remote_var(corpus)
        exp = Analyzer("defects").add(db).analyze()
        merged = {
            v.name: v for v in exp.top_down(MetricKind.LATENCY).variables
        }
        # Guard the premise: minor is sampled, remote-dominant, and its
        # share sits below the threshold the test reconciles with.
        assert merged["minor"].samples > 0
        assert merged["minor"].remote_fraction == 1.0
        assert merged["minor"].share < 0.25 < merged["table"].share
        report = analyze_model(corpus.STATIC_SEEDS["master_first_touch"]())
        report.findings.clear()
        rec = reconcile(report, exp, min_share=0.25)
        assert [v.variable for v in rec.with_label("missed")] == ["table"]
        assert all(v.variable != "minor" for v in rec.verdicts)

    def test_stripped_meta_degrades_with_warning(self, corpus):
        # The defect twin's meta carries no 'machine' stamp (the v1
        # recording shape): reconciliation must degrade to the default
        # constant variants with a warning, not fail.
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        assert "machine" not in db.meta
        exp = Analyzer("defects").add(db).analyze()
        model = corpus.STATIC_SEEDS["master_first_touch"]()
        rec = reconcile(analyze_model(model), exp)
        assert rec.warnings and "machine" in rec.warnings[0]
        assert rec.n_confirmed == 1
        mrec = reconcile_metrics(model, exp)
        assert mrec.warnings and "machine" in mrec.warnings[0]


class TestOverridePropagation:
    def _model(self, corpus, machine):
        process = SimProcess(machine, name="override-demo")
        corpus._static_image(process)
        model = StaticModel("override_demo", "seed", process, machine, 4)
        model.entry("main")
        model.parallel_region("main", 50, corpus._STATIC_REGION, 4)
        model.alloc("main", 10, "big", 8192 * 8, kind="calloc")
        model.access(corpus._STATIC_REGION, 110, "big", weight=7000.0,
                     pattern=OmpBlockPattern(8192, 8))
        model.alloc("main", 20, "small", 8192 * 8, kind="calloc")
        model.access(corpus._STATIC_REGION, 111, "small", weight=3000.0,
                     pattern=OmpBlockPattern(8192, 8))
        model.free("main", 40, "big")
        model.free("main", 40, "small")
        return model

    def test_min_share_override_reaches_both_passes(self, corpus):
        # One registry constant, two consumers: raising min_share for a
        # preset must (a) suppress the static analyzer's sub-threshold
        # findings and (b) flip the dynamic is_significant flag — with
        # no other code change.
        base = analyze_model(self._model(corpus, tiny_machine()))
        assert sorted(f.variable for f in base.findings) == ["big", "small"]

        REGISTRY.constant("min_share", 0.5, override="unit-override")
        spec = replace(tiny_spec(), name="unit-override")
        overridden = analyze_model(self._model(corpus, Machine(spec)))
        assert [f.variable for f in overridden.findings] == ["big"]

        flag = "is_significant"
        counters = {"metric_share": 0.3}
        with_override = StaticSource(
            counters, kind="profile",
            override_keys=("unit-override", "profile"),
        )
        assert REGISTRY.evaluate(with_override, only=(flag,))[flag] == 0.0
        default = StaticSource(
            counters, kind="profile", override_keys=("profile",)
        )
        assert REGISTRY.evaluate(default, only=(flag,))[flag] == 1.0


class TestSingleSourcedThreshold:
    def test_min_share_is_one_object_everywhere(self):
        from repro.core.guidance import _MIN_SHARE
        from repro.staticcheck.analyze import MIN_SHARE as ANALYZE_MIN_SHARE

        assert _MIN_SHARE is MIN_SHARE
        assert ANALYZE_MIN_SHARE is MIN_SHARE
        assert MIN_SHARE == 0.03
        # The registry's base constant carries the same value.
        assert REGISTRY.constant_value("min_share") == MIN_SHARE
