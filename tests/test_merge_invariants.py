"""Merge invariants: input immutability, associativity, read-only views.

Pins the guarantees the parallel subsystem builds on: merging never
mutates its inputs (the reduction tree deep-copies at the leaves), the
merge result is independent of grouping (canonical bytes identical for
sequential / arity-2 / arity-4 schedules), and building analysis views
never changes the profile being viewed (the ``cct()`` write-path
accessor must not run on read paths).
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import Analyzer
from repro.core.cct import HEAP_MARKER_KEY, KIND_FRAME, KIND_IP
from repro.core.derived import derive_from_profile
from repro.core.merge import merge_profiles, reduction_tree_merge
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.render import render_bottom_up, render_top_down, render_variable_table
from repro.core.storage import StorageClass
from repro.errors import ProfileError
from repro.pmu.sample import Sample


def _sample(latency=10, level=3):
    return Sample("T", 1, 1, 0x10, latency, level, False, False, 64)


def _make_db(i: int) -> ProfileDB:
    """A small but non-trivial per-rank DB (allocation path + accesses)."""
    db = ProfileDB(f"p{i}", meta={"rank": str(i)})
    for t in range(2):
        profile = ThreadProfile(f"p{i}.t{t}")
        heap = profile.cct(StorageClass.HEAP)
        heap.add_sample_at(
            [
                ((KIND_FRAME, "main", 0), {"label": "main"}),
                ((KIND_FRAME, "solver.c", 42 + (i % 3)), {"var": "grid"}),
                (HEAP_MARKER_KEY, None),
                ((KIND_IP, "kernel", 100 + t, 0), None),
            ],
            _sample(latency=5 + i),
        )
        profile.cct(StorageClass.STATIC).add_sample_at(
            [
                ((KIND_FRAME, "main", 0), None),
                ((KIND_IP, "init", 7, 0), None),
            ],
            _sample(latency=2 + t),
        )
        db.add_thread(profile)
    return db


class TestInputImmutability:
    def test_reduction_tree_merge_leaves_inputs_bit_identical(self):
        dbs = [_make_db(i) for i in range(7)]
        before = [db.to_bytes() for db in dbs]
        before_canonical = [db.canonical_bytes() for db in dbs]
        reduction_tree_merge(dbs, "job", arity=2)
        assert [db.to_bytes() for db in dbs] == before
        assert [db.canonical_bytes() for db in dbs] == before_canonical

    def test_merge_profiles_leaves_inputs_bit_identical(self):
        dbs = [_make_db(i) for i in range(5)]
        before = [db.to_bytes() for db in dbs]
        merge_profiles(dbs, "job")
        assert [db.to_bytes() for db in dbs] == before

    def test_inputs_not_aliased_into_output(self):
        """Mutating the merge output never leaks back into an input."""
        dbs = [_make_db(i) for i in range(3)]
        before = [db.to_bytes() for db in dbs]
        merged, _ = reduction_tree_merge(dbs, "job")
        (profile,) = merged.all_profiles()
        for storage in profile.storage_classes():
            cct = profile.get_cct(storage)
            cct.root.metrics.latency += 1_000_000
            for node in cct.root.find(lambda n: n.info is not None):
                node.info["tampered"] = "yes"
        assert [db.to_bytes() for db in dbs] == before

    def test_same_input_mergeable_twice(self):
        """A DB can feed two merges (e.g. a retry) with identical results."""
        dbs = [_make_db(i) for i in range(4)]
        first, _ = reduction_tree_merge(dbs, "job")
        second, _ = reduction_tree_merge(dbs, "job")
        assert first.canonical_bytes() == second.canonical_bytes()


class TestAssociativity:
    def test_sequential_and_tree_schedules_agree_bytewise(self):
        for n in (1, 2, 3, 8, 13):
            dbs = [_make_db(i) for i in range(n)]
            seq = merge_profiles(dbs, "job").canonical_bytes()
            tree2 = reduction_tree_merge(dbs, "job", arity=2)[0].canonical_bytes()
            tree4 = reduction_tree_merge(dbs, "job", arity=4)[0].canonical_bytes()
            assert seq == tree2 == tree4, f"schedule mismatch at n={n}"

    def test_canonical_bytes_ignore_insertion_order(self):
        a, b = _make_db(0), _make_db(1)
        ab = merge_profiles([a, b], "job")
        ba = merge_profiles([b, a], "job")
        assert ab.canonical_bytes() == ba.canonical_bytes()
        # plain to_bytes may legitimately differ (child insertion order);
        # canonical encoding is what erases schedule effects.

    def test_merge_stats_critical_path_model(self):
        dbs = [_make_db(i) for i in range(16)]
        _, stats = reduction_tree_merge(dbs, "job", arity=2)
        assert stats.rounds == 4
        assert len(stats.per_round_visits) == 5  # leaf round + 4 merge rounds
        assert stats.node_visits == sum(stats.per_round_visits)
        assert 0 < stats.critical_path_visits < stats.node_visits


class TestReadOnlyViews:
    def _snapshot(self, db: ProfileDB):
        return (
            db.to_bytes(),
            db.node_count(),
            {
                name: tuple(profile.storage_classes())
                for name, profile in db.threads.items()
            },
        )

    def test_building_views_does_not_materialize_ccts(self):
        """A profile with only HEAP data must still have only HEAP data
        after every read path has walked it."""
        db = _make_db(0)
        # Drop STATIC so most storage classes are absent — the historical
        # bug materialized empty CCTs for every class a view asked about.
        for profile in db.threads.values():
            profile._ccts.pop(StorageClass.STATIC)
        size_before = db.size_bytes()
        snap = self._snapshot(db)

        exp = Analyzer("view-test").add_all([db]).analyze()
        for kind in MetricKind:
            view = exp.top_down(kind)
            render_top_down(view, top_n=5)
            render_variable_table(view, top_n=5)
            render_bottom_up(exp.bottom_up(kind), top_n=5)
        derive_from_profile(exp)

        assert self._snapshot(db) == snap
        assert db.size_bytes() == size_before
        # The merged experiment DB is likewise not inflated by being read.
        merged_snap = self._snapshot(exp.db)
        exp.top_down(MetricKind.LATENCY)
        assert self._snapshot(exp.db) == merged_snap

    def test_get_cct_does_not_create(self):
        profile = ThreadProfile("t")
        assert profile.get_cct(StorageClass.HEAP) is None
        assert not profile.has_cct(StorageClass.HEAP)
        assert profile.storage_classes() == []
        # cct() is the write path and does create.
        profile.cct(StorageClass.HEAP)
        assert profile.get_cct(StorageClass.HEAP) is not None

    def test_empty_merge_rejected(self):
        with pytest.raises(ProfileError):
            reduction_tree_merge([], "job")
        with pytest.raises(ProfileError):
            reduction_tree_merge([_make_db(0)], "job", arity=1)
