"""Ctx: calls, accesses, allocation, calloc first-touch, phases."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, SimulationError
from repro.machine.policies import Interleave
from repro.sim.runtime import Ctx


class TestCalls:
    def test_call_builds_and_unwinds_stack(self, mini):
        ctx = mini.master_ctx()
        seen_depths = []

        def inner():
            seen_depths.append(ctx.thread.depth)
            yield

        def outer():
            yield from ctx.call(mini.work, 10, inner())

        mini.process.run_serial(outer())
        assert seen_depths == [2]
        assert ctx.thread.depth == 1  # back to main

    def test_call_sync(self, mini):
        ctx = mini.master_ctx()

        def body(c, x):
            assert c.thread.current_function is mini.alloc_shim
            return x * 2

        assert ctx.call_sync(mini.alloc_shim, 20, body, 21) == 42
        assert ctx.thread.current_function is mini.main

    def test_call_returns_value(self, mini):
        ctx = mini.master_ctx()
        result = []

        def inner():
            yield
            return 7

        def outer():
            r = yield from ctx.call(mini.work, 10, inner())
            result.append(r)

        mini.process.run_serial(outer())
        assert result == [7]

    def test_call_charges_cycles(self, mini):
        ctx = mini.master_ctx()
        before = ctx.thread.clock

        def inner():
            yield

        def outer():
            yield from ctx.call(mini.work, 10, inner())

        mini.process.run_serial(outer())
        assert ctx.thread.clock > before

    def test_ip_helper(self, mini):
        ctx = mini.master_ctx()
        assert ctx.ip(10) == mini.main.ip(10)
        assert ctx.ip(10, 2) == mini.main.ip(10, 2)


class TestAccesses:
    def test_load_advances_clock_and_counts(self, mini):
        ctx = mini.master_ctx()
        before = ctx.thread.clock
        lat = ctx.load(mini.process.aspace.heap.base + 0x100000, line=10)
        assert lat > 0
        assert ctx.thread.clock == before + lat
        assert ctx.thread.mem_count == 1

    def test_store_counts_store(self, mini):
        ctx = mini.master_ctx()
        ctx.store(mini.process.aspace.heap.base, line=10)
        assert mini.machine.hierarchy.store_count == 1

    def test_load_stride_count(self, mini):
        ctx = mini.master_ctx()
        ip = ctx.ip(10)
        ctx.load_stride(mini.process.aspace.heap.base, 50, 8, ip)
        assert ctx.thread.mem_count == 50

    def test_compute_advances_clock(self, mini):
        ctx = mini.master_ctx()
        before = ctx.thread.clock
        ctx.compute(100)
        assert ctx.thread.clock >= before + 100
        assert ctx.thread.inst_count == 100

    def test_first_touch_places_on_master_node(self, mini):
        ctx = mini.master_ctx()
        addr = mini.process.aspace.heap.base + 0x5000
        ctx.load(addr, line=10)
        assert (
            mini.process.aspace.page_home_if_touched(addr)
            == mini.process.master.numa_node
        )


class TestAllocation:
    def test_malloc_returns_heap_address(self, mini):
        ctx = mini.master_ctx()
        addr = ctx.malloc(1024, line=20)
        assert mini.process.aspace.heap.size_of(addr) == 1024

    def test_malloc_does_not_touch_pages(self, mini):
        ctx = mini.master_ctx()
        addr = ctx.malloc(4096 * 4, line=20)
        assert mini.process.aspace.page_home_if_touched(addr) is None

    def test_calloc_touches_every_page(self, mini):
        ctx = mini.master_ctx()
        nbytes = 4096 * 4
        addr = ctx.calloc(nbytes, line=20)
        for off in range(0, nbytes, 4096):
            assert mini.process.aspace.page_home_if_touched(addr + off) is not None

    def test_calloc_places_pages_on_caller_node(self, mini):
        ctx = mini.master_ctx()
        addr = ctx.calloc(4096 * 2, line=20)
        node = mini.process.master.numa_node
        assert mini.process.aspace.page_home_if_touched(addr) == node

    def test_calloc_respects_interleave_override(self, mini):
        aspace = mini.process.aspace
        aspace.set_default_policy(Interleave(list(range(mini.machine.n_numa_nodes))))
        ctx = mini.master_ctx()
        addr = ctx.calloc(4096 * 8, line=20)
        homes = {
            aspace.page_home_if_touched(addr + off) for off in range(0, 4096 * 8, 4096)
        }
        assert len(homes) == mini.machine.n_numa_nodes

    def test_free_releases(self, mini):
        ctx = mini.master_ctx()
        addr = ctx.malloc(64, line=20)
        ctx.free(addr, line=21)
        assert mini.process.aspace.heap.size_of(addr) is None

    def test_free_unallocated_raises(self, mini):
        ctx = mini.master_ctx()
        with pytest.raises(AllocationError):
            ctx.free(0x1234, line=21)

    def test_alloc_array_shapes(self, mini):
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("m", (10, 20), line=20, elem=4, order="F")
        assert arr.nbytes == 800
        assert arr.order == "F"
        assert mini.process.aspace.heap.size_of(arr.base) == 800

    def test_alloc_array_bad_kind(self, mini):
        ctx = mini.master_ctx()
        with pytest.raises(SimulationError):
            ctx.alloc_array("m", (4,), line=20, kind="brk")

    def test_static_array_view(self, mini):
        ctx = mini.master_ctx()
        arr = ctx.static_array(mini.bss, (64, 64), elem=8)
        assert arr.base == mini.bss.address
        assert arr.name == "g_table"

    def test_static_array_oversize_rejected(self, mini):
        ctx = mini.master_ctx()
        with pytest.raises(SimulationError):
            ctx.static_array(mini.bss, (1 << 20,), elem=8)

    def test_touch_range_parallel_init_idiom(self, mini):
        ctx = mini.master_ctx()
        addr = ctx.malloc(4096 * 4, line=20)
        ctx.touch_range(addr, 4096 * 4, line=10)
        pages = {
            mini.process.aspace.page_home_if_touched(addr + off)
            for off in range(0, 4096 * 4, 4096)
        }
        assert pages == {mini.process.master.numa_node}


class TestPhasesAndComm:
    def test_phase_buckets_master_clock(self, mini):
        ctx = mini.master_ctx()
        with mini.process.phase("setup"):
            ctx.compute(1000)
        with mini.process.phase("solve"):
            ctx.compute(500)
        cycles = mini.process.phase_cycles
        assert cycles["setup"] >= 1000
        assert cycles["solve"] >= 500
        assert mini.process.elapsed_cycles >= 1500

    def test_nested_phases(self, mini):
        ctx = mini.master_ctx()
        with mini.process.phase("outer"):
            ctx.compute(100)
            with mini.process.phase("inner"):
                ctx.compute(50)
        assert mini.process.phase_cycles["inner"] >= 50
        assert mini.process.phase_cycles["outer"] >= 150

    def test_comm_charges_latency_and_bandwidth(self, mini):
        ctx = mini.master_ctx()
        before = ctx.thread.clock
        ctx.comm(10_000)
        assert ctx.thread.clock - before >= 2000 + 500

    def test_elapsed_seconds_uses_clock_hz(self, mini):
        ctx = mini.master_ctx()
        ctx.compute(int(mini.machine.spec.clock_hz))
        assert mini.process.elapsed_seconds() >= 1.0


class TestFreeValidation:
    """Regression: Ctx.free must validate liveness BEFORE firing hooks.

    Pre-fix, a double/invalid free notified every hook first, so the
    profiler untracked the variable (or raised ProfileError mid-hook)
    before the allocator rejected the free — corrupting HeapDataMap for
    a still-live block.
    """

    def test_double_free_raises_allocation_error(self, profiled_mini):
        prog, profiler = profiled_mini
        ctx = prog.master_ctx()
        addr = ctx.malloc(8192, line=20, var="table")
        ctx.free(addr, line=21)
        with pytest.raises(AllocationError):
            ctx.free(addr, line=22)

    def test_invalid_free_leaves_heap_map_intact(self, profiled_mini):
        prog, profiler = profiled_mini
        ctx = prog.master_ctx()
        addr = ctx.malloc(8192, line=20, var="table")
        assert profiler.heap_map.lookup(addr) is not None
        with pytest.raises(AllocationError):
            ctx.free(addr + 16, line=21)  # interior pointer
        # The block is still live and still attributed.
        assert profiler.heap_map.lookup(addr) is not None
        assert prog.process.aspace.heap.size_of(addr) is not None
        ctx.free(addr, line=22)  # proper cleanup still works afterwards
        assert profiler.heap_map.lookup(addr) is None

    def test_foreign_free_rejected_without_hook_side_effects(self, profiled_mini):
        prog, profiler = profiled_mini
        ctx = prog.master_ctx()
        addr = ctx.malloc(8192, line=20, var="table")
        other = ctx.malloc(8192, line=20, var="other")
        # Simulate a confused pointer: free() of an address the allocator
        # no longer considers live (freed behind the runtime's back).
        prog.process.aspace.heap.free(other)
        with pytest.raises(AllocationError):
            ctx.free(other, line=21)
        # The tracked entry for `other` was NOT untracked by hooks.
        assert profiler.heap_map.lookup(other) is not None
        assert profiler.heap_map.lookup(addr) is not None
