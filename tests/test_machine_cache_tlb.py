"""Set-associative cache and TLB models: LRU behaviour and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine.cache import SetAssocCache
from repro.machine.tlb import TLB


class TestConstruction:
    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            SetAssocCache("c", 3, 2)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            SetAssocCache("c", 4, 0)

    def test_capacity(self):
        c = SetAssocCache("c", 8, 4)
        assert c.capacity_lines == 32


class TestHitMiss:
    def test_miss_then_hit_after_install(self):
        c = SetAssocCache("c", 4, 2)
        assert not c.access(100)
        c.install(100)
        assert c.access(100)
        assert c.hits == 1
        assert c.misses == 1

    def test_access_does_not_install(self):
        c = SetAssocCache("c", 4, 2)
        c.access(7)
        assert not c.contains(7)

    def test_lru_eviction_order(self):
        c = SetAssocCache("c", 1, 2)  # one set, 2 ways
        c.install(1)
        c.install(2)
        evicted = c.install(3)  # 1 is LRU
        assert evicted == 1
        assert c.contains(2)
        assert c.contains(3)
        assert not c.contains(1)

    def test_access_promotes_to_mru(self):
        c = SetAssocCache("c", 1, 2)
        c.install(1)
        c.install(2)
        c.access(1)          # 1 becomes MRU; 2 is now LRU
        evicted = c.install(3)
        assert evicted == 2

    def test_install_existing_line_no_eviction(self):
        c = SetAssocCache("c", 1, 2)
        c.install(1)
        c.install(2)
        assert c.install(1) is None
        assert c.resident_lines() == 2

    def test_set_isolation(self):
        c = SetAssocCache("c", 4, 1)
        # lines 0..3 map to distinct sets; none evicts another
        for line in range(4):
            assert c.install(line) is None
        assert c.resident_lines() == 4

    def test_conflict_misses_same_set(self):
        c = SetAssocCache("c", 4, 1)
        c.install(0)
        evicted = c.install(4)  # same set index (4 & 3 == 0)
        assert evicted == 0

    def test_invalidate_all(self):
        c = SetAssocCache("c", 4, 2)
        for line in range(8):
            c.install(line)
        c.invalidate_all()
        assert c.resident_lines() == 0
        assert not c.access(0)


class TestCacheProperties:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=400))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = SetAssocCache("c", 4, 2)
        for line in lines:
            if not c.access(line):
                c.install(line)
        assert c.resident_lines() <= c.capacity_lines
        for ways in c._sets:
            assert len(ways) <= c.assoc
            assert len(set(ways)) == len(ways)  # no duplicate tags

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, lines):
        c = SetAssocCache("c", 8, 2)
        for line in lines:
            if not c.access(line):
                c.install(line)
        assert c.hits + c.misses == len(lines)

    @given(st.lists(st.integers(0, 31), min_size=2, max_size=200))
    @settings(max_examples=50)
    def test_immediate_reaccess_hits(self, lines):
        """Accessing a just-installed line always hits (MRU property)."""
        c = SetAssocCache("c", 4, 4)
        for line in lines:
            if not c.access(line):
                c.install(line)
            assert c.access(line)


class TestSequentialWorkingSet:
    def test_fits_in_cache_all_hits_second_pass(self):
        c = SetAssocCache("c", 8, 2)  # 16 lines
        for line in range(16):
            if not c.access(line):
                c.install(line)
        c.hits = c.misses = 0
        for line in range(16):
            assert c.access(line)

    def test_working_set_larger_than_cache_thrashes(self):
        c = SetAssocCache("c", 4, 2)  # 8 lines
        for _ in range(3):
            for line in range(32):
                if not c.access(line):
                    c.install(line)
        # Cyclic streaming over 4x capacity with LRU: ~no hits.
        assert c.hits == 0


class TestTLB:
    def test_miss_autofills(self):
        t = TLB(2, 2)
        assert not t.access(5)
        assert t.access(5)

    def test_capacity_pages(self):
        assert TLB(8, 4).capacity_pages == 32

    def test_flush(self):
        t = TLB(2, 2)
        t.access(1)
        t.flush()
        assert not t.access(1)

    def test_large_stride_misses_every_page(self):
        t = TLB(4, 2)  # 8 pages
        misses_before = t.misses
        for page in range(0, 160, 10):  # 16 distinct pages, round robin
            t.access(page)
        for page in range(0, 160, 10):
            t.access(page)
        # 16-page working set over 8-entry TLB: second pass still misses.
        assert t.misses >= misses_before + 24
