"""CLI tests for ``hpcview staticcheck`` and the argument-error audit.

The audit half pins the contract that every malformed invocation —
unknown subcommand, missing ``--app``, mutually exclusive flags given
together — exits non-zero with usage text on *stderr*, so driver
scripts and CI gates can rely on the exit status alone.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.tools.hpcview import main

REPO = Path(__file__).resolve().parents[1]
DEFECTS = str(REPO / "examples" / "defects.py")


def _run(argv, capsys):
    status = main(argv)
    captured = capsys.readouterr()
    return status, captured.out, captured.err


def _error(argv, capsys) -> tuple[int, str]:
    with pytest.raises(SystemExit) as exc:
        main(argv)
    err = capsys.readouterr().err
    code = exc.value.code if isinstance(exc.value.code, int) else 1
    return code, err


class TestStaticcheckCommand:
    def test_app_report_and_fail_on(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--app", "nw", "--fail-on", "H001,H002"], capsys
        )
        assert status == 1
        assert "H001" in out and "referrence" in out and "input_itemsets" in out
        assert "functions=3 edges=2 reachable=3" in out

    def test_clean_variant_passes_the_gate(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--app", "nw", "--variant", "libnuma",
             "--fail-on", "any"], capsys
        )
        assert status == 0
        assert "no hazards predicted" in out

    @pytest.mark.parametrize("seed,code", [
        ("master_first_touch", "H001"),
        ("false_sharing_slots", "H002"),
        ("parallel_no_free", "H003"),
        ("dead_alloc", "H004"),
    ])
    def test_each_seed_trips_its_gate(self, capsys, seed, code):
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS, "--defect", seed,
             "--fail-on", code], capsys
        )
        assert status == 1
        assert f"[{code}]" in out

    def test_clean_seed_passes(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "clean_static", "--fail-on", "any"], capsys
        )
        assert status == 0

    def test_list_defects(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS, "--list-defects"],
            capsys,
        )
        assert status == 0
        for name in ("master_first_touch", "clean_static"):
            assert name in out

    def test_reconcile_run_confirms_h001(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "master_first_touch", "--reconcile-run"], capsys
        )
        assert status == 0
        assert "confirmed" in out
        assert "precision=100% recall=100%" in out

    def test_reconcile_against_rpdb_files(self, capsys, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location("defects_cli", DEFECTS)
        corpus = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(corpus)
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        path = tmp_path / "seed.rpdb"
        path.write_bytes(db.to_bytes())
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "master_first_touch", "--reconcile", str(path)],
            capsys,
        )
        assert status == 0
        assert "confirmed" in out

    def test_report_shows_predicted_impacts(self, capsys):
        status, out, _ = _run(["staticcheck", "--app", "nw"], capsys)
        assert status == 0
        assert out.count("predicted impact") == 2

    def test_reconcile_metrics_renders_comparison(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "master_first_touch", "--reconcile-run",
             "--reconcile-metrics"], capsys
        )
        assert status == 0
        assert "metric reconciliation" in out
        assert "remote_dram_fraction" in out
        assert "verdict agreement=1/1" in out
        # The twin's meta has no machine stamp: the degrade warning shows.
        assert "warning:" in out and "machine" in out

    def test_list_hazards_prints_registry_thresholds(self, capsys):
        from repro.metrics.boundness import REGISTRY

        status, out, _ = _run(["staticcheck", "--list-hazards"], capsys)
        assert status == 0
        for code in ("H001", "H002", "H003", "H004"):
            assert code in out
        # Thresholds come from the registry, not hard-coded prose.
        for name in (
            "min_share", "confirm_remote_fraction",
            "remote_dominant_fraction", "memory_bound_fraction",
            "numa_bound_remote", "tlb_pressure",
        ):
            value = REGISTRY.constant_value(name, ("static",))
            assert f"{value:g}" in out, f"{name}={value:g} missing"

    def test_list_hazards_respects_min_share_override(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--list-hazards", "--min-share", "0.42"], capsys
        )
        assert status == 0
        assert "0.42" in out

    def test_extract_reports_same_findings_as_registered(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--app", "nw", "--extract",
             "--fail-on", "H001"], capsys
        )
        assert status == 1
        assert "static model extracted from source" in out
        assert "referrence" in out and "input_itemsets" in out

    def test_diff_model_gate_passes_on_agreement(self, capsys):
        status, out, _ = _run(
            ["staticcheck", "--app", "nw", "--extract", "--diff-model",
             "--variant", "all"], capsys
        )
        assert status == 0
        assert "nw/original: models agree" in out
        assert "nw/libnuma: models agree" in out

    def test_topdown_static_app_renders_hierarchy(self, capsys):
        status, out, _ = _run(["topdown", "--static-app", "nw"], capsys)
        assert status == 0
        assert "backend_bound" in out
        assert "static counter prediction" in out

    def test_advise_cites_static_predictions(self, capsys, tmp_path):
        import importlib.util

        from repro.staticcheck import register_static_app

        spec = importlib.util.spec_from_file_location("defects_adv", DEFECTS)
        corpus = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(corpus)
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        path = tmp_path / "seed.rpdb"
        path.write_bytes(db.to_bytes())
        register_static_app(
            "mft-seed",
            lambda variant, preset: corpus.STATIC_SEEDS["master_first_touch"](),
        )
        status, out, _ = _run(
            ["advise", str(path), "--metric", "remote",
             "--static-app", "mft-seed"], capsys
        )
        assert status == 0
        assert "predicted statically (H001 at main:10)" in out


class TestArgumentErrors:
    def test_unknown_subcommand(self, capsys):
        code, err = _error(["frobnicate"], capsys)
        assert code == 2
        assert "usage:" in err and "invalid choice" in err

    def test_run_missing_app(self, capsys):
        code, err = _error(["run", "--ranks", "2"], capsys)
        assert code == 2
        assert "usage:" in err and "--app" in err

    def test_staticcheck_needs_app_or_defect(self, capsys):
        code, err = _error(["staticcheck"], capsys)
        assert code == 2
        assert "usage:" in err and "exactly one of --app or --defect" in err

    def test_staticcheck_rejects_both_app_and_defect(self, capsys):
        code, err = _error(
            ["staticcheck", "--app", "nw", "--defect", "dead_alloc"], capsys
        )
        assert code == 2
        assert "usage:" in err

    def test_staticcheck_unknown_seed(self, capsys):
        code, err = _error(
            ["staticcheck", "--defects-file", DEFECTS, "--defect", "nope"],
            capsys,
        )
        assert code == 2
        assert "unknown static seed" in err

    def test_staticcheck_seed_without_dynamic_twin(self, capsys):
        code, err = _error(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "dead_alloc", "--reconcile-run"], capsys
        )
        assert code == 2
        assert "no dynamic profile runner" in err

    def test_staticcheck_reconcile_metrics_needs_reconcile_source(self, capsys):
        code, err = _error(
            ["staticcheck", "--app", "nw", "--reconcile-metrics"], capsys
        )
        assert code == 2
        assert "--reconcile-metrics needs --reconcile or --reconcile-run" in err

    def test_staticcheck_diff_model_needs_extract(self, capsys):
        code, err = _error(
            ["staticcheck", "--app", "nw", "--diff-model"], capsys
        )
        assert code == 2
        assert "usage:" in err and "--diff-model needs --extract" in err

    def test_staticcheck_extract_needs_app(self, capsys):
        code, err = _error(
            ["staticcheck", "--defects-file", DEFECTS,
             "--defect", "dead_alloc", "--extract"], capsys
        )
        assert code == 2
        assert "usage:" in err and "--extract" in err

    def test_staticcheck_variant_all_rejects_reconcile(self, capsys):
        code, err = _error(
            ["staticcheck", "--app", "nw", "--variant", "all",
             "--reconcile-run"], capsys
        )
        assert code == 2
        assert "usage:" in err and "pick one variant" in err

    def test_staticcheck_unknown_flag(self, capsys):
        code, err = _error(["staticcheck", "--frobnicate"], capsys)
        assert code == 2
        assert "usage:" in err

    def test_topdown_rejects_app_and_static_app_together(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["topdown", "--app", "nw", "--static-app", "nw"])
        assert "no-execution prediction" in str(exc.value)

    def test_sanitize_needs_app_or_defect(self, capsys):
        code, err = _error(["sanitize"], capsys)
        assert code == 2
        assert "usage:" in err and "exactly one of --app or --defect" in err

    def test_sanitize_unknown_seed(self, capsys):
        code, err = _error(
            ["sanitize", "--defects-file", DEFECTS, "--defect", "nope"],
            capsys,
        )
        assert code == 2
        assert "unknown defect seed" in err

    def test_serve_unknown_flag(self, capsys):
        code, err = _error(["serve", "--frobnicate"], capsys)
        assert code == 2
        assert "usage:" in err

    def test_serve_rejects_non_integer_port(self, capsys):
        code, err = _error(["serve", "--port", "not-a-port"], capsys)
        assert code == 2
        assert "usage:" in err and "invalid int value" in err

    def test_query_requires_port(self, capsys):
        code, err = _error(["query", "nw"], capsys)
        assert code == 2
        assert "usage:" in err and "--port" in err

    def test_query_unknown_view(self, capsys):
        code, err = _error(
            ["query", "nw", "--port", "1", "--view", "flamegraph"], capsys
        )
        assert code == 2
        assert "usage:" in err and "invalid choice" in err

    def test_query_unknown_flag(self, capsys):
        code, err = _error(["query", "nw", "--port", "1", "--wat"], capsys)
        assert code == 2
        assert "usage:" in err

    def test_staticcheck_unknown_app_is_config_error(self, capsys):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["staticcheck", "--app", "nope"])
