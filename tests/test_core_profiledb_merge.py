"""ProfileDB serialization and reduction-tree merging."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import KIND_FRAME, KIND_IP
from repro.core.merge import merge_profiles, merge_thread_profiles, reduction_tree_merge
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.errors import ProfileError
from repro.pmu.sample import Sample


def _sample(latency=10, level=3):
    return Sample("T", 1, 1, 0x10, latency, level, False, False, 64)


def _profile(thread_name: str, spec) -> ThreadProfile:
    """spec: list of (storage, path_names, latency)."""
    profile = ThreadProfile(thread_name)
    for storage, names, latency in spec:
        path = [((KIND_FRAME, n, 0), {"label": n}) for n in names[:-1]]
        path.append(((KIND_IP, names[-1], 1, 0), {"label": names[-1]}))
        profile.cct(storage).add_sample_at(path, _sample(latency=latency))
    return profile


def _db(name, threads):
    db = ProfileDB(name)
    for t in threads:
        db.add_thread(t)
    return db


SPEC_A = [
    (StorageClass.HEAP, ("main", "f", "x"), 5),
    (StorageClass.STATIC, ("main", "y"), 3),
]
SPEC_B = [
    (StorageClass.HEAP, ("main", "f", "x"), 7),
    (StorageClass.UNKNOWN, ("main", "z"), 2),
]


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        db = _db("p0", [_profile("t0", SPEC_A), _profile("t1", SPEC_B)])
        rt = ProfileDB.from_bytes(db.to_bytes())
        assert rt.process_name == "p0"
        assert set(rt.threads) == {"t0", "t1"}
        assert rt.node_count() == db.node_count()
        for name in db.threads:
            for storage in db.threads[name].storage_classes():
                orig = db.threads[name].cct(storage)
                back = rt.threads[name].cct(storage)
                assert back.total(MetricKind.LATENCY) == orig.total(MetricKind.LATENCY)
                assert back.root.to_dict() == orig.root.to_dict()

    def test_bad_magic_rejected(self):
        with pytest.raises(ProfileError):
            ProfileDB.from_bytes(b"XXXX\x01\x00")

    def test_negative_key_elements_roundtrip(self):
        profile = ThreadProfile("t")
        profile.cct(StorageClass.UNKNOWN).insert_path(
            [((KIND_FRAME, "f", -8), None)]
        )
        db = _db("p", [profile])
        rt = ProfileDB.from_bytes(db.to_bytes())
        root = rt.threads["t"].cct(StorageClass.UNKNOWN).root
        assert (KIND_FRAME, "f", -8) in root.children

    def test_size_compact_vs_repr(self):
        """String-table encoding beats a naive text dump."""
        spec = [
            (StorageClass.HEAP, ("main", f"fn_{i % 7}", "access"), i)
            for i in range(1, 60)
        ]
        db = _db("p0", [_profile("t0", spec)])
        naive = len(repr(db.threads["t0"].cct(StorageClass.HEAP).root.to_dict()))
        assert db.size_bytes() < naive

    def test_size_grows_with_contexts_not_samples(self):
        few = _profile("t", [(StorageClass.HEAP, ("main", "x"), 1)])
        many = _profile("t", [(StorageClass.HEAP, ("main", "x"), 1)] * 500)
        # 500x the samples on one context costs only a few varint bytes;
        # the node structure (and thus size) is unchanged.
        delta = _db("p", [many]).size_bytes() - _db("p", [few]).size_bytes()
        assert 0 <= delta <= 8

    def test_duplicate_thread_rejected(self):
        db = ProfileDB("p")
        db.add_thread(_profile("t", []))
        with pytest.raises(ProfileError):
            db.add_thread(_profile("t", []))


class TestMergeSemantics:
    def test_merge_thread_profiles_conserves(self):
        a = _profile("a", SPEC_A)
        b = _profile("b", SPEC_B)
        before = (
            a.cct(StorageClass.HEAP).total(MetricKind.LATENCY)
            + b.cct(StorageClass.HEAP).total(MetricKind.LATENCY)
        )
        merge_thread_profiles(a, b)
        assert a.cct(StorageClass.HEAP).total(MetricKind.LATENCY) == before
        assert a.cct(StorageClass.UNKNOWN).total(MetricKind.LATENCY) == 2

    def test_merge_profiles_single_output(self):
        dbs = [
            _db("p0", [_profile("t0", SPEC_A)]),
            _db("p1", [_profile("t0", SPEC_B)]),
        ]
        merged = merge_profiles(dbs, name="job")
        assert len(merged.threads) == 1
        profile = next(iter(merged.threads.values()))
        assert profile.cct(StorageClass.HEAP).total(MetricKind.LATENCY) == 12

    def test_merge_empty_raises(self):
        with pytest.raises(ProfileError):
            merge_profiles([])

    @given(st.integers(1, 24), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_reduction_tree_equals_sequential(self, n, arity):
        def make(i):
            return _db(
                f"p{i}",
                [
                    _profile(
                        f"p{i}.t0",
                        [(StorageClass.HEAP, ("main", f"f{i % 3}", "x"), i + 1)],
                    )
                ],
            )

        dbs_seq = [make(i) for i in range(n)]
        dbs_tree = [make(i) for i in range(n)]
        seq = merge_profiles(dbs_seq)
        tree, stats = reduction_tree_merge(dbs_tree, arity=arity)
        p_seq = next(iter(seq.threads.values()))
        p_tree = next(iter(tree.threads.values()))
        for storage in p_seq.storage_classes():
            assert (
                p_tree.cct(storage).root.to_dict()["metrics"]
                == p_seq.cct(storage).root.to_dict()["metrics"]
            )
            assert p_tree.cct(storage).total(MetricKind.LATENCY) == p_seq.cct(
                storage
            ).total(MetricKind.LATENCY)
            assert p_tree.cct(storage).node_count() == p_seq.cct(storage).node_count()

    def test_reduction_rounds_logarithmic(self):
        dbs = [_db(f"p{i}", [_profile(f"t{i}", SPEC_A)]) for i in range(16)]
        _, stats = reduction_tree_merge(dbs, arity=2)
        assert stats.rounds == 4  # log2(16)

    def test_critical_path_below_total(self):
        dbs = [_db(f"p{i}", [_profile(f"t{i}", SPEC_A)]) for i in range(8)]
        _, stats = reduction_tree_merge(dbs)
        assert 0 < stats.critical_path_visits < stats.node_visits

    def test_identical_heap_paths_coalesce_across_processes(self):
        """Allocation call paths from different ranks merge into one variable."""
        dbs = [
            _db(f"p{i}", [_profile(f"t{i}", [(StorageClass.HEAP, ("main", "alloc", "x"), 4)])])
            for i in range(4)
        ]
        merged = merge_profiles(dbs)
        profile = next(iter(merged.threads.values()))
        heap = profile.cct(StorageClass.HEAP)
        # One shared path: root -> main -> alloc -> x(ip); node count constant.
        assert heap.node_count() == 4
        assert heap.total(MetricKind.SAMPLES) == 4

    def test_static_vars_coalesce_by_name(self):
        from repro.core.cct import KIND_STATIC_VAR

        def static_profile(t):
            p = ThreadProfile(t)
            p.cct(StorageClass.STATIC).add_sample_at(
                [((KIND_STATIC_VAR, "exe", "f_elem"), None),
                 ((KIND_IP, "kernel", 801, 0), None)],
                _sample(latency=9),
            )
            return p

        merged = merge_profiles([_db("p0", [static_profile("a")]),
                                 _db("p1", [static_profile("b")])])
        profile = next(iter(merged.threads.values()))
        static = profile.cct(StorageClass.STATIC)
        var_nodes = static.root.find(lambda n: n.key[0] == KIND_STATIC_VAR)
        assert len(var_nodes) == 1
        assert var_nodes[0].inclusive().samples == 2
