"""Tests for the unified telemetry layer (``repro.obs``).

Covers the span tracer (sim-time and wall-clock domains), the metrics
registry's deterministic exports, the activation seam (zero state when
disabled, read-only observation when enabled — profiles byte-identical
either way), driver/merge/codec instrumentation, the overhead-dilation
accounting, and the ``hpcview trace``/``hpcview metrics`` CLI.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import ConfigError, ObsError
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    ObsConfig,
    TraceWriter,
    WallClock,
    active_session,
    observing,
)
from repro.parallel.registry import run_app_rank

from tests.conftest import MiniProgram

REPO = Path(__file__).resolve().parent.parent


def _load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, REPO / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


trace_schema = _load_tool("trace_schema")


def spans(trace: TraceWriter, cat: str) -> list[dict]:
    return [e for e in trace.events if e.get("cat") == cat and e.get("ph") == "X"]


# ---------------------------------------------------------------- clocks


class TestClocks:
    def test_manual_clock_advances_by_fixed_step(self):
        clock = ManualClock(start_us=10.0, step_us=2.0)
        assert clock.now_us() == 10.0
        assert clock.now_us() == 12.0
        clock.advance(100.0)
        assert clock.now_us() == 114.0

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        a = clock.now_us()
        b = clock.now_us()
        assert b >= a >= 0.0


# ---------------------------------------------------------------- trace writer


class TestTraceWriter:
    def test_complete_event_shape(self):
        trace = TraceWriter()
        trace.complete("work", "phase", 1.5, 2.5, pid=3, tid=4, args={"k": 1})
        (event,) = trace.events
        assert event == {
            "name": "work", "cat": "phase", "ph": "X",
            "ts": 1.5, "dur": 2.5, "pid": 3, "tid": 4, "args": {"k": 1},
        }

    def test_negative_duration_clamped(self):
        trace = TraceWriter()
        trace.complete("x", "c", 5.0, -1.0, pid=0, tid=0)
        assert trace.events[0]["dur"] == 0.0

    def test_bounded_buffer_drops_and_counts(self):
        trace = TraceWriter(max_events=3)
        for i in range(10):
            trace.complete(f"e{i}", "c", i, 1.0, pid=0, tid=0)
        assert len(trace.events) == 3
        assert trace.dropped_events == 7
        payload = json.loads(trace.to_json())
        assert payload["otherData"]["dropped_events"] == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceWriter(max_events=0)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        trace = TraceWriter()
        trace.process_name(1, "p")
        trace.complete("x", "c", 0.0, 1.0, pid=1, tid=0)
        out = trace.write(tmp_path / "sub" / "trace.json")
        assert out.is_file()
        assert list(out.parent.glob("*.tmp.*")) == []
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == 2

    def test_output_passes_schema_check(self):
        trace = TraceWriter()
        trace.process_name(0, "host")
        trace.thread_name(0, 1, "driver")
        trace.complete("x", "driver", 0.0, 1.0, pid=0, tid=1)
        trace.instant("mark", "driver", 0.5, pid=0, tid=1)
        payload = json.loads(trace.to_json())
        assert trace_schema.validate_trace(payload) == []
        assert trace_schema.validate_trace(
            payload, require_cats={"driver"}
        ) == []
        errors = trace_schema.validate_trace(payload, require_cats={"merge"})
        assert any("merge" in e for e in errors)

    def test_schema_flags_malformed_events(self):
        errors = trace_schema.validate_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}, {"ph": "?"}]}
        )
        assert errors


class TestTraceWriterConcurrency:
    """Emission under contention: exact drop accounting, no torn output."""

    def test_concurrent_emission_exact_drop_count(self):
        trace = TraceWriter(max_events=50)
        n_threads, per_thread = 8, 100
        barrier = threading.Barrier(n_threads)

        def emit(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                trace.complete(f"t{tid}.{i}", "c", i, 1.0, pid=0, tid=tid)

        threads = [
            threading.Thread(target=emit, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # The lock makes bound-check + append + drop-count atomic: the
        # buffer never overshoots and every rejected event is counted.
        assert len(trace.events) == 50
        assert trace.dropped_events == n_threads * per_thread - 50

    def test_to_json_during_concurrent_emission(self):
        trace = TraceWriter(max_events=10_000)
        stop = threading.Event()

        def emit() -> None:
            i = 0
            while not stop.is_set():
                trace.complete(f"e{i}", "c", i, 1.0, pid=0, tid=1)
                i += 1

        worker = threading.Thread(target=emit)
        worker.start()
        try:
            for _ in range(20):
                payload = json.loads(trace.to_json())  # must not tear
                assert isinstance(payload["traceEvents"], list)
        finally:
            stop.set()
            worker.join()

    def test_atomic_write_under_full_buffer_and_contention(self, tmp_path):
        trace = TraceWriter(max_events=5)
        done = threading.Event()

        def emit() -> None:
            i = 0
            while not done.is_set():
                trace.complete(f"e{i}", "c", i, 1.0, pid=0, tid=1)
                i += 1

        worker = threading.Thread(target=emit)
        worker.start()
        try:
            for round_ in range(5):
                out = trace.write(tmp_path / f"trace{round_}.json")
                payload = json.loads(out.read_text())  # complete file
                assert len(payload["traceEvents"]) == 5
                assert payload["otherData"]["dropped_events"] >= 0
        finally:
            done.set()
            worker.join()
        assert list(tmp_path.glob("*.tmp.*")) == []  # rename happened


# ---------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2, {"app": "nw"})
        reg.inc("hits", 3, {"app": "nw"})
        reg.inc("hits", 7, {"app": "lulesh"})
        assert reg.value("hits", {"app": "nw"}) == 5
        assert reg.value("hits", {"app": "lulesh"}) == 7

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 4)
        reg.set_gauge("depth", 9)
        assert reg.value("depth") == 9

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.0005, 0.5, 0.6, 50.0, 1e9):
            reg.observe("lat", v)
        prom = reg.to_prometheus()
        assert 'lat_bucket{le="0.001"} 1' in prom
        assert 'lat_bucket{le="1"} 3' in prom
        assert 'lat_bucket{le="100"} 4' in prom
        assert 'lat_bucket{le="+Inf"} 5' in prom
        assert "lat_count 5" in prom

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError):
            reg.set_gauge("x", 1.0)

    def test_serialization_independent_of_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("m", 1, {"x": "1", "y": "2"})
        a.set_gauge("a_first", 3)
        b.set_gauge("a_first", 3)
        b.set_gauge("m", 1, {"y": "2", "x": "1"})
        assert a.to_json() == b.to_json()
        assert a.to_prometheus() == b.to_prometheus()

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.set_gauge("m", 1, {"p": 'a"b\\c\nd'})
        line = [
            l for l in reg.to_prometheus().splitlines()
            if not l.startswith("#")
        ][0]
        assert line == 'm{p="a\\"b\\\\c\\nd"} 1'
        errors, samples = trace_schema.validate_prometheus(reg.to_prometheus())
        assert errors == [] and samples == 1

    def test_prometheus_output_validates(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 3, {"app": "nw"}, help_text="a counter")
        reg.set_gauge("g", 1.25)
        reg.observe("h", 0.05, {"app": "nw"})
        errors, samples = trace_schema.validate_prometheus(reg.to_prometheus())
        assert errors == []
        # histogram: len(buckets) + _bucket{+Inf} + _sum + _count + p50/95/99
        assert samples == 2 + (len(reg._series[("h", (("app", "nw"),))].buckets) + 6)

    def test_json_export_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 1, {"app": "nw"})
        payload = json.loads(reg.to_json())
        (series,) = payload["series"]
        assert series == {
            "kind": "counter", "labels": {"app": "nw"}, "name": "c", "value": 1.0,
        }

    def test_series_count_and_names(self):
        reg = MetricsRegistry()
        reg.inc("c", 1, {"a": "1"})
        reg.inc("c", 1, {"a": "2"})
        reg.set_gauge("g", 0)
        assert reg.series_count() == 3
        assert reg.metric_names() == ["c", "g"]


class TestHistogramQuantiles:
    def test_summary_lines_in_prometheus_export(self):
        reg = MetricsRegistry()
        for v in (0.005, 0.005, 0.05, 0.5, 5.0):
            reg.observe("lat", v, {"op": "q"})
        prom = reg.to_prometheus()
        for suffix in ("_p50", "_p95", "_p99"):
            assert f'lat{suffix}{{op="q"}}' in prom
        errors, _ = trace_schema.validate_prometheus(prom)
        assert errors == []

    def test_summary_fields_in_json_export(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.05)
        (series,) = json.loads(reg.to_json())["series"]
        assert {"p50", "p95", "p99"} <= set(series)

    def test_quantiles_interpolate_within_buckets(self):
        # 100 observations uniform in (0, 1]: every one lands in the
        # (0.1, 1.0] bucket except the ten <= 0.1.  The interpolated p50
        # sits mid-bucket; estimates are monotone in q and bounded by
        # the bucket that contains the rank.
        reg = MetricsRegistry()
        for i in range(1, 101):
            reg.observe("u", i / 100.0)
        hist = reg._series[("u", ())]
        p50, p95, p99 = (
            hist.quantile(0.50), hist.quantile(0.95), hist.quantile(0.99)
        )
        assert 0.1 < p50 <= 1.0
        assert p50 <= p95 <= p99 <= 1.0
        assert p50 == pytest.approx(0.5, abs=0.06)

    def test_overflow_observations_clamp_to_last_bucket(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("big", 1e6)  # beyond every finite bucket
        hist = reg._series[("big", ())]
        assert hist.quantile(0.99) == hist.buckets[-1]

    def test_empty_histogram_quantile_is_zero(self):
        from repro.obs.metrics import _Histogram

        hist = _Histogram((1.0, 2.0))
        assert hist.quantile(0.99) == 0.0


class TestLabelKeyConsistency:
    """One metric name must keep one label-key set (ObsError otherwise)."""

    def test_counter_label_key_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("reqs", 1, {"app": "nw"})
        with pytest.raises(ObsError, match="label keys"):
            reg.inc("reqs", 1, {"job": "merge"})

    def test_error_at_observation_time_names_both_key_sets(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1, {"op": "ingest"})
        with pytest.raises(ObsError) as exc:
            reg.observe("lat", 0.1, {"op": "ingest", "shard": "0"})
        assert "('op',)" in str(exc.value)
        assert "('op', 'shard')" in str(exc.value)

    def test_same_keys_different_values_fine(self):
        reg = MetricsRegistry()
        reg.inc("reqs", 1, {"app": "nw"})
        reg.inc("reqs", 1, {"app": "lulesh"})
        assert reg.value("reqs", {"app": "nw"}) == 1

    def test_unlabelled_then_labelled_raises(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 1)
        with pytest.raises(ObsError):
            reg.set_gauge("depth", 2, {"queue": "a"})

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.inc("m", 1, {"a": "1", "b": "2"})
        reg.inc("m", 1, {"b": "3", "a": "4"})  # same key set, reordered
        assert reg.value("m", {"a": "4", "b": "3"}) == 1

    def test_rejected_observation_leaves_no_series_behind(self):
        reg = MetricsRegistry()
        reg.inc("reqs", 1, {"app": "nw"})
        with pytest.raises(ObsError):
            reg.inc("reqs", 1, {"zone": "x"})
        assert reg.series_count() == 1
        errors, samples = trace_schema.validate_prometheus(reg.to_prometheus())
        assert errors == [] and samples == 1


# ---------------------------------------------------------------- activation


class TestActivationSeam:
    def test_no_session_no_agent(self):
        prog = MiniProgram()
        assert prog.process.obs is None
        assert prog.process.hooks == []
        assert active_session() is None

    def test_session_attaches_agent_to_every_process(self):
        with observing() as session:
            a, b = MiniProgram(pid=0), MiniProgram(pid=1)
        assert a.process.obs is not None
        assert b.process.obs is not None
        assert session.agents == [a.process.obs, b.process.obs]
        assert a.process.obs in a.process.hooks

    def test_sessions_do_not_nest(self):
        with observing():
            with pytest.raises(ConfigError):
                with observing():
                    pass

    def test_session_scope_ends_attachment(self):
        with observing():
            pass
        assert active_session() is None
        assert MiniProgram().process.obs is None

    def test_profiles_byte_identical_with_subsystem_importable(self):
        # Mirror of the sanitizer's acceptance bar: a subprocess that never
        # imported repro.obs produces the baseline; importing the package
        # (without a session) must leave profile bytes unchanged — and so
        # must an *active* session, since agents never mutate sim state.
        code = (
            "from repro.parallel.registry import run_app_rank\n"
            "import sys\n"
            "assert 'repro.obs' not in sys.modules\n"
            "baseline = run_app_rank('nw', 0, 2).canonical_bytes()\n"
            "import repro.obs\n"
            "from repro.obs import observing\n"
            "again = run_app_rank('nw', 0, 2).canonical_bytes()\n"
            "assert again == baseline, 'profile bytes changed by import'\n"
            "with observing():\n"
            "    active = run_app_rank('nw', 0, 2).canonical_bytes()\n"
            "assert active == baseline, 'profile bytes changed by session'\n"
            "sys.stdout.write('IDENTICAL %d' % len(baseline))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("IDENTICAL")


# ---------------------------------------------------------------- sim spans


class TestSimTimeSpans:
    def test_phase_span_matches_phase_cycles(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            addr = ctx.malloc(8192, line=20, var="buf")
            with prog.process.phase("init"):
                for i in range(16):
                    ctx.load(addr + 8 * i, line=10)
            ctx.free(addr, line=20)
        session.finalize()
        (phase,) = spans(session.trace, "phase")
        assert phase["name"] == "phase:init"
        assert phase["args"]["cycles"] == prog.process.phase_cycles["init"]
        us = prog.machine.cycles_to_seconds(phase["args"]["cycles"]) * 1e6
        assert phase["dur"] == pytest.approx(us, abs=0.002)

    def test_malloc_lifetime_span(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            addr = ctx.malloc(4096, line=20, var="buf")
            for i in range(8):
                ctx.store(addr + 8 * i, line=10)
            ctx.free(addr, line=20)
        session.finalize()
        (span,) = spans(session.trace, "malloc")
        assert span["name"] == "malloc:buf"
        assert span["args"]["addr"] == addr
        assert span["args"]["bytes"] == 4096
        assert span["dur"] > 0

    def test_leaked_alloc_closed_at_finalize(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            addr = ctx.malloc(4096, line=20, var="leaked")
            for i in range(4):
                ctx.load(addr + 8 * i, line=10)
        assert spans(session.trace, "malloc") == []
        session.finalize()
        (span,) = spans(session.trace, "malloc")
        assert span["name"] == "malloc:leaked"

    def test_malloc_spans_disabled_by_config(self):
        with observing(
            ObsConfig(wall_clock=ManualClock(), trace_malloc=False)
        ) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            addr = ctx.malloc(4096, line=20)
            ctx.free(addr, line=20)
        session.finalize()
        assert spans(session.trace, "malloc") == []

    def test_rank_span_covers_whole_run(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            addr = ctx.malloc(8192, line=20)
            for i in range(32):
                ctx.load(addr + 8 * i, line=10)
            ctx.free(addr, line=20)
        session.finalize()
        (rank,) = spans(session.trace, "rank")
        assert rank["ts"] == 0.0
        assert rank["args"]["cycles"] == prog.process.master.clock

    def test_app_covers_all_sim_categories(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            db = run_app_rank("nw", 0, 2)
            db.to_bytes()
        session.finalize()
        cats = session.trace.categories()
        assert {"phase", "parallel", "rank", "malloc", "codec"} <= cats
        parallel = spans(session.trace, "parallel")
        assert parallel and all(p["args"]["n_threads"] >= 1 for p in parallel)
        payload = json.loads(session.trace.to_json())
        assert trace_schema.validate_trace(payload) == []


# ---------------------------------------------------------------- wall spans


class TestWallDomain:
    def test_wall_span_records_duration(self):
        with observing(ObsConfig(wall_clock=ManualClock(step_us=5.0))) as session:
            with session.wall_span("task", "merge", tid=2, args={"n": 1}):
                pass
        (span,) = spans(session.trace, "merge")
        assert span["pid"] == 0 and span["tid"] == 2
        assert span["dur"] == 5.0  # one clock step between enter and exit

    def test_driver_emits_spans_and_metrics(self, tmp_path):
        from repro.parallel import profile_ranks

        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            report = profile_ranks(
                "streamcluster", 2, tmp_path, jobs=1, timeout=120.0
            )
        session.finalize()
        assert report.ok
        driver = spans(session.trace, "driver")
        names = {s["name"] for s in driver}
        assert {"rank0#try1", "rank1#try1", "profile_ranks:streamcluster"} <= names
        m = session.metrics
        labels = {"app": "streamcluster"}
        assert m.value("repro_driver_attempts_total", labels) == 2
        assert m.value("repro_driver_ranks", labels) == 2
        assert m.value("repro_driver_ranks_failed", labels) == 0
        assert m.value("repro_driver_retries_total", labels) == 0

    def test_merge_emits_spans_and_metrics(self):
        from repro.parallel.merge import parallel_reduction_merge

        blobs = [
            run_app_rank("streamcluster", r, 4).to_bytes() for r in range(4)
        ]
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            _db, _stats, report = parallel_reduction_merge(
                blobs, "job", jobs=1, arity=2
            )
        session.finalize()
        merge = spans(session.trace, "merge")
        names = {s["name"] for s in merge}
        assert "parallel_reduction_merge:job" in names
        assert any(n.startswith("merge-round1[") for n in names)
        m = session.metrics
        labels = {"job": "job"}
        assert m.value("repro_merge_inputs", labels) == 4
        assert m.value("repro_merge_rounds", labels) == report.rounds
        assert m.value("repro_merge_tasks", labels) == report.tasks_dispatched
        assert m.value("repro_merge_dropped", labels) == 0

    def test_codec_spans_and_counters(self):
        from repro.core.profiledb import ProfileDB

        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            db = run_app_rank("streamcluster", 0, 2)
            data = db.to_bytes()
            ProfileDB.from_bytes(data)
        session.finalize()
        codec = spans(session.trace, "codec")
        names = {s["name"] for s in codec}
        assert {"codec:encode", "codec:decode"} <= names
        assert session.metrics.value("repro_codec_encodes_total") == 1
        assert session.metrics.value("repro_codec_decodes_total") == 1
        assert session.metrics.value("repro_codec_encoded_bytes_total") == len(data)


# ---------------------------------------------------------------- metrics layers


class TestMetricsLayers:
    def test_machine_and_profiler_layers_populated(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            run_app_rank("nw", 0, 2)
        session.finalize()
        names = set(session.metrics.metric_names())
        assert {
            "repro_machine_loads",
            "repro_machine_level_counts",
            "repro_machine_tlb_misses",
            "repro_machine_contention_queue_cycles",
            "repro_sim_elapsed_cycles",
            "repro_sim_phase_cycles",
            "repro_profiler_samples",
            "repro_profiler_overhead_cycles",
            "repro_profiler_dilation_percent",
            "repro_sanitizer_quarantine_bytes",
        } <= names

    def test_dilation_accounting_consistent(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            run_app_rank("nw", 0, 2)
        session.finalize()
        m = session.metrics
        labels = {"process": "nw"}
        overhead = m.value("repro_profiler_overhead_cycles", labels)
        elapsed = m.value("repro_sim_elapsed_cycles", labels)
        dilation = m.value("repro_profiler_dilation_percent", labels)
        assert overhead > 0 and elapsed > 0
        assert dilation == pytest.approx(100.0 * overhead / elapsed)
        assert session.max_dilation_percent() == pytest.approx(dilation)

    def test_sanitizer_layer_populated_under_sanitize_session(self):
        from repro.sanitize import sanitizing

        with sanitizing() as san, observing(
            ObsConfig(wall_clock=ManualClock())
        ) as session:
            run_app_rank("streamcluster", 0, 2)
            san.report()
        session.finalize()
        names = set(session.metrics.metric_names())
        assert "repro_sanitizer_allocs" in names
        assert "repro_sanitizer_findings" in names
        labels = {"process": "streamcluster"}
        assert session.metrics.value("repro_sanitizer_findings", labels) == 0


# ---------------------------------------------------------------- determinism


class TestDeterminism:
    def _one_run(self):
        with observing(ObsConfig(wall_clock=ManualClock())) as session:
            db = run_app_rank("nw", 0, 2)
            db.to_bytes()
        session.finalize()
        return (
            session.trace.to_json(),
            session.metrics.to_json(),
            session.metrics.to_prometheus(),
        )

    def test_same_seed_byte_identical_trace_and_metrics(self):
        assert self._one_run() == self._one_run()

    def test_cli_trace_byte_identical_across_processes(self, tmp_path):
        outs = []
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        for i in range(2):
            out = tmp_path / f"trace{i}.json"
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.tools.hpcview", "trace",
                    "--app", "streamcluster", "--ranks", "2", "--jobs", "1",
                    "--deterministic", "--out", str(out),
                ],
                capture_output=True, text=True, env=env, timeout=600,
                cwd=tmp_path,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]


# ---------------------------------------------------------------- CLI


class TestCLI:
    def test_trace_command(self, tmp_path, capsys):
        from repro.tools.hpcview import main

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--app", "streamcluster", "--ranks", "2",
            "--jobs", "1", "--deterministic", "--out", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert trace_schema.validate_trace(
            payload,
            require_cats={"phase", "parallel", "driver", "merge", "rank", "codec"},
        ) == []
        stdout = capsys.readouterr().out
        assert "span categories" in stdout

    def test_metrics_command_prom_and_json(self, tmp_path, capsys):
        from repro.tools.hpcview import main

        out = tmp_path / "metrics.prom"
        rc = main([
            "metrics", "--app", "streamcluster", "--ranks", "2",
            "--jobs", "1", "--format", "prom", "--out", str(out),
        ])
        assert rc == 0
        errors, samples = trace_schema.validate_prometheus(out.read_text())
        assert errors == []
        assert samples >= 12
        prefixes = {"repro_machine", "repro_driver", "repro_merge", "repro_sanitizer"}
        text = out.read_text()
        assert all(p in text for p in prefixes)

        out_json = tmp_path / "metrics.json"
        rc = main([
            "metrics", "--app", "streamcluster", "--ranks", "2",
            "--jobs", "1", "--format", "json", "--no-sanitize",
            "--out", str(out_json),
        ])
        assert rc == 0
        payload = json.loads(out_json.read_text())
        names = {s["name"] for s in payload["series"]}
        assert len(names) >= 12
        assert not any(n.startswith("repro_sanitizer_alloc") for n in names)
        capsys.readouterr()
