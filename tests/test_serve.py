"""Continuous-profiling service: store invariants, ingest protocol, queries.

The load-bearing pin is rollup byte-identity: however ingest and
compaction interleave, the store's incrementally-maintained rollup must
equal ``merge_profiles`` over the same leaves byte-for-byte (canonical
codec).  The rest covers the asyncio front end — framing, corrupt-blob
rejection, bounded-queue backpressure, ack-after-durable — and the
query layer's generation-keyed memoization and invalidation.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.merge import merge_profiles
from repro.core.profiledb import ProfileDB
from repro.errors import ServeError
from repro.obs import ManualClock, ObsConfig, ObsSession
from repro.parallel.registry import run_app_rank
from repro.serve import ProfileService, ProfileStore, QueryEngine, ServeClient
from repro.serve.service import STATUS_ERROR, pack_request, read_response


@pytest.fixture(scope="module")
def blobs():
    """Four real rank profiles (canonical codec-v2 bytes)."""
    return [
        run_app_rank("nw", rank, 4).to_bytes(canonical=True) for rank in range(4)
    ]


def _session() -> ObsSession:
    return ObsSession(ObsConfig(wall_clock=ManualClock()))


def _reference(blobs: list[bytes], app: str) -> bytes:
    dbs = [ProfileDB.from_bytes(b) for b in blobs]
    return merge_profiles(dbs, name=app).canonical_bytes()


# ------------------------------------------------------------------- store


class TestStore:
    def test_shard_layout_and_reopen(self, tmp_path, blobs):
        store = ProfileStore(tmp_path / "s", shards=2)
        for blob in blobs:
            store.ingest("nw", blob)
        refs = store.leaves("nw")
        assert [r.seq for r in refs] == [1, 2, 3, 4]
        assert {r.shard for r in refs} == {"shard-00", "shard-01"}
        # A fresh instance recovers the sequence counter from filenames.
        reopened = ProfileStore(tmp_path / "s", shards=2)
        assert reopened.ingest("nw", blobs[0]) == 5

    def test_corrupt_blob_rejected_at_ingest(self, tmp_path):
        store = ProfileStore(tmp_path / "s")
        from repro.errors import ProfileError

        with pytest.raises(ProfileError):
            store.ingest("nw", b"not a profile")
        assert store.leaves("nw") == []

    @pytest.mark.parametrize("bad", ["", "../up", "a/b", ".hidden", "x" * 65])
    def test_bad_namespace_rejected(self, tmp_path, bad):
        store = ProfileStore(tmp_path / "s")
        with pytest.raises(ServeError):
            store.ingest(bad, b"")

    def test_compact_noop_keeps_generation(self, tmp_path, blobs):
        store = ProfileStore(tmp_path / "s")
        store.ingest("nw", blobs[0])
        first = store.compact("nw")
        assert first.changed and first.generation == 1
        again = store.compact("nw")
        assert not again.changed and again.generation == 1
        assert store.rollup_bytes("nw") is not None

    def test_rollup_byte_identity_across_schedules(self, tmp_path, blobs):
        """The acceptance pin: three interleavings, one byte string."""
        expected = _reference(blobs, "nw")
        schedules = {
            "one-shot": [4],              # compact once after everything
            "pairs": [2, 2],              # compact mid-stream
            "eager": [1, 1, 1, 1],        # compact after every blob
        }
        outputs = {}
        for name, batches in schedules.items():
            store = ProfileStore(tmp_path / name, shards=3, arity=2)
            it = iter(blobs)
            for batch in batches:
                for _ in range(batch):
                    store.ingest("nw", next(it))
                store.compact("nw")
            identical, covered = store.verify_rollup("nw")
            assert identical and covered == 4
            outputs[name] = store.rollup_bytes("nw")
        assert outputs["one-shot"] == expected
        assert outputs["pairs"] == expected
        assert outputs["eager"] == expected

    def test_unreadable_stored_leaf_is_integrity_error(self, tmp_path, blobs):
        store = ProfileStore(tmp_path / "s", shards=1)
        store.ingest("nw", blobs[0])
        [ref] = store.leaves("nw")
        ref.path.write_bytes(b"rotted")
        with pytest.raises(ServeError, match="unreadable"):
            store.compact("nw")

    def test_stats_counts_uncompacted(self, tmp_path, blobs):
        store = ProfileStore(tmp_path / "s", shards=2)
        store.ingest("nw", blobs[0])
        store.compact("nw")
        store.ingest("nw", blobs[1])
        stats = store.stats("nw")
        assert stats.leaves == 2 and stats.uncompacted == 1
        assert stats.generation == 1 and stats.rollup_bytes > 0


# ----------------------------------------------------------------- service


def _with_service(tmp_path, coro_factory, blobs=None, **service_kw):
    """Run an async test body against a started service; returns session."""
    session = _session()
    store = ProfileStore(tmp_path / "store", shards=2)
    service = ProfileService(store, session=session, **service_kw)

    async def runner():
        host, port = await service.start()
        try:
            await coro_factory(service, host, port)
        finally:
            await service.stop()

    asyncio.run(runner())
    return service, session


class TestService:
    def test_ingest_compact_query_round_trip(self, tmp_path, blobs):
        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                seqs = [await client.ingest("nw", b) for b in blobs]
                assert seqs == [1, 2, 3, 4]
                compacted = await client.compact("nw")
                assert compacted["generation"] == 1
                assert compacted["leaves_folded"] == 4
                top = await client.query("nw", "topdown")
                assert "backend_bound" in top["text"]
                assert top["generation"] == 1 and top["cached"] is False
                bottom = await client.query("nw", "bottomup", metric="latency")
                assert bottom["sites"]
                variables = await client.query("nw", "variables", n=3)
                assert len(variables["variables"]) <= 3

        service, _ = _with_service(tmp_path, body, blobs)
        identical, covered = service.store.verify_rollup("nw")
        assert identical and covered == 4

    def test_interleaved_service_schedule_matches_reference(
        self, tmp_path, blobs
    ):
        """Second pinned schedule through the full network path."""

        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                await client.ingest("nw", blobs[0])
                await client.compact("nw")
                for blob in blobs[1:3]:
                    await client.ingest("nw", blob)
                await client.compact("nw")
                await client.ingest("nw", blobs[3])
                await client.compact("nw")

        service, _ = _with_service(tmp_path, body, blobs)
        assert service.store.rollup_bytes("nw") == _reference(blobs, "nw")

    def test_corrupt_blob_rejected_and_counted(self, tmp_path, blobs):
        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError, match="corrupt"):
                    await client.ingest("nw", b"garbage bytes")
                # The connection survives a rejection.
                assert await client.ingest("nw", blobs[0]) == 1

        service, session = _with_service(tmp_path, body, blobs)
        assert session.metrics.value(
            "repro_serve_rejected_total",
            {"app": "nw", "reason": "corrupt-blob"},
        ) == 1
        assert session.metrics.value(
            "repro_serve_ingest_total", {"app": "nw"}
        ) == 1

    def test_bad_magic_and_unknown_op(self, tmp_path, blobs):
        async def body(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"BOGUSFRAMEBYTES")
            await writer.drain()
            status, payload = await read_response(reader)
            assert status == STATUS_ERROR and "magic" in payload["error"]
            writer.close()

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(pack_request(99, "nw", b""))
            await writer.drain()
            status, payload = await read_response(reader)
            assert status == STATUS_ERROR and "unknown op" in payload["error"]
            writer.close()

        _with_service(tmp_path, body)

    def test_query_without_rollup_is_clear_error(self, tmp_path, blobs):
        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                await client.ingest("nw", blobs[0])
                with pytest.raises(ServeError, match="no compacted rollup"):
                    await client.query("nw", "topdown")

        _with_service(tmp_path, body, blobs)

    def test_two_apps_namespace_isolation(self, tmp_path, blobs):
        async def body(service, host, port):
            async def ship(app, subset):
                async with ServeClient(host, port) as client:
                    for blob in subset:
                        await client.ingest(app, blob)
                    await client.compact(app)

            await asyncio.gather(
                ship("alpha", blobs[:2]), ship("beta", blobs[2:])
            )
            async with ServeClient(host, port) as client:
                status = await client.query("", "status")
                assert set(status["apps"]) == {"alpha", "beta"}
                assert status["apps"]["alpha"]["leaves"] == 2
                assert status["apps"]["beta"]["leaves"] == 2

        service, _ = _with_service(tmp_path, body, blobs)
        for app, subset in (("alpha", blobs[:2]), ("beta", blobs[2:])):
            assert service.store.rollup_bytes(app) == _reference(subset, app)

    def test_backpressure_bounds_inflight_window(self, tmp_path, blobs):
        """With the writer gated shut, at most queue_size blobs are queued
        and no ingest acks; opening the gate drains and acks everything."""

        class GatedService(ProfileService):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.gate: asyncio.Event | None = None

            async def _consume(self):
                self.gate = asyncio.Event()
                await self.gate.wait()
                await super()._consume()

        session = _session()
        store = ProfileStore(tmp_path / "store", shards=2)
        service = GatedService(store, queue_size=2, session=session)

        async def runner():
            host, port = await service.start()
            try:
                clients = []
                sends = []
                for blob in blobs:
                    client = ServeClient(host, port)
                    await client.connect()
                    clients.append(client)
                    sends.append(
                        asyncio.create_task(client.ingest("nw", blob))
                    )
                await asyncio.sleep(0.05)
                assert service._queue.qsize() <= 2  # bounded window
                assert not any(t.done() for t in sends)  # no early acks
                assert store.leaves("nw") == []  # nothing durable yet
                service.gate.set()
                seqs = await asyncio.gather(*sends)
                assert sorted(seqs) == [1, 2, 3, 4]
                for client in clients:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(runner())
        assert len(store.leaves("nw")) == 4

    def test_auto_compaction_and_metricsz(self, tmp_path, blobs):
        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                for blob in blobs:
                    await client.ingest("nw", blob)
                # compact_every=2 folded twice without explicit requests.
                metricsz = await client.query("", "metricsz")
                assert "repro_serve_compactions_total" in metricsz["text"]
                assert "repro_serve_ingest_total" in metricsz["text"]

        service, session = _with_service(
            tmp_path, body, blobs, compact_every=2
        )
        assert service.store.generation("nw") == 2
        assert service.store.rollup_bytes("nw") == _reference(blobs, "nw")
        assert session.metrics.value(
            "repro_serve_compactions_total", {"app": "nw"}
        ) == 2

    def test_serve_spans_on_named_lane(self, tmp_path, blobs):
        async def body(service, host, port):
            async with ServeClient(host, port) as client:
                await client.ingest("nw", blobs[0])
                await client.compact("nw")

        _, session = _with_service(tmp_path, body, blobs)
        from repro.obs import WALL_PID, WALL_TID_SERVE

        serve_spans = [
            e for e in session.trace.events
            if e.get("cat") == "serve" and e.get("ph") == "X"
        ]
        names = {e["name"] for e in serve_spans}
        assert {"serve.ingest", "serve.compact"} <= names
        assert all(
            e["pid"] == WALL_PID and e["tid"] == WALL_TID_SERVE
            for e in serve_spans
        )


# ------------------------------------------------------------- query layer


class TestQueryEngine:
    def _compacted_store(self, tmp_path, blobs) -> ProfileStore:
        store = ProfileStore(tmp_path / "store", shards=2)
        for blob in blobs[:2]:
            store.ingest("nw", blob)
        store.compact("nw")
        return store

    def test_memoized_until_compaction(self, tmp_path, blobs):
        store = self._compacted_store(tmp_path, blobs)
        engine = QueryEngine(store, session=_session())
        first = engine.query("nw", "topdown")
        second = engine.query("nw", "topdown")
        assert first["cached"] is False and second["cached"] is True
        assert engine.cache_hits == 1 and engine.cache_misses == 1
        # Compaction bumps the generation: the cache must invalidate.
        store.ingest("nw", blobs[2])
        store.compact("nw")
        third = engine.query("nw", "topdown")
        assert third["cached"] is False
        assert third["generation"] == 2
        assert engine.hit_ratio() == pytest.approx(1 / 3)

    def test_cached_payload_matches_fresh(self, tmp_path, blobs):
        store = self._compacted_store(tmp_path, blobs)
        engine = QueryEngine(store)
        first = engine.query("nw", "variables", metric="latency", n=5)
        second = engine.query("nw", "variables", metric="latency", n=5)
        assert {k: v for k, v in first.items() if k != "cached"} == {
            k: v for k, v in second.items() if k != "cached"
        }

    def test_unknown_view_and_metric(self, tmp_path, blobs):
        store = self._compacted_store(tmp_path, blobs)
        engine = QueryEngine(store)
        with pytest.raises(ServeError, match="unknown view"):
            engine.query("nw", "flamegraph")
        with pytest.raises(ServeError, match="unknown metric"):
            engine.query("nw", "variables", metric="zorkmids")

    def test_status_on_empty_store(self, tmp_path):
        engine = QueryEngine(ProfileStore(tmp_path / "s"))
        payload = engine.query("", "status")
        assert payload["apps"] == {} and "empty" in payload["text"]

    def test_metricsz_without_session(self, tmp_path):
        engine = QueryEngine(ProfileStore(tmp_path / "s"))
        payload = engine.query("", "metricsz")
        assert "no telemetry session" in payload["text"]

    def test_payload_is_json_serializable(self, tmp_path, blobs):
        store = self._compacted_store(tmp_path, blobs)
        engine = QueryEngine(store)
        for view in ("topdown", "bottomup", "variables", "status"):
            json.dumps(engine.query("nw", view))
