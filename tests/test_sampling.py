"""Sampled simulation: decision stream, estimator, seam, and fidelity.

``repro.sim.sampling`` simulates a deterministic subset of access runs
and extrapolates the rest.  These tests pin the decision stream's
determinism, the EWMA clock estimator, the extrapolation scale, the
``sys.modules`` activation seam, the provenance stamped into rank DBs,
the ``repro.obs`` metric fold — and the acceptance bound: sampled-mode
divergence stays within the documented limits on every bundled app
preset at smoke scale.
"""

from __future__ import annotations

import pytest

from repro import Ctx, SimProcess, tiny_machine
from repro.errors import ConfigError
from repro.pmu.ebs import EBSEngine
from repro.sim.sampling import (
    RunSampler,
    SamplingConfig,
    active_config,
    sampling,
)
from tests.conftest import MiniProgram
from tests.test_machine_bulk_access import _SampleRecorder, hierarchy_state

# Documented error bounds (DESIGN.md "Vectorized core"): per-metric
# relative error and per-variable share delta of a sampled run.
MAX_METRIC_REL_ERR = 0.10
MAX_SHARE_DELTA = 0.02


class TestConfig:
    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_rate_validated(self, rate):
        with pytest.raises(ConfigError):
            SamplingConfig(rate=rate)

    def test_min_run_validated(self):
        with pytest.raises(ConfigError):
            SamplingConfig(min_run=0)

    def test_rate_one_allowed(self):
        SamplingConfig(rate=1.0)


class TestRunSampler:
    def _decisions(self, seed: int, counts) -> list[bool]:
        s = RunSampler(SamplingConfig(rate=0.5, min_run=64), seed)
        out = []
        for c in counts:
            keep = s.observe_run(c)
            out.append(keep)
            if keep:
                s.note_simulated(c, c * 10)
            else:
                s.estimate_skipped(c)
        return out

    def test_same_seed_same_decisions(self):
        counts = [100] * 200
        assert self._decisions(3, counts) == self._decisions(3, counts)

    def test_different_seeds_differ(self):
        counts = [100] * 400
        assert self._decisions(3, counts) != self._decisions(4, counts)

    def test_short_runs_always_simulated(self):
        s = RunSampler(SamplingConfig(rate=0.01, min_run=64), seed=1)
        assert all(s.observe_run(63) for _ in range(500))
        assert s.skipped_runs == 0
        assert s.eligible_runs == 0

    def test_first_eligible_run_primes_the_estimate(self):
        s = RunSampler(SamplingConfig(rate=0.01, min_run=64), seed=1)
        assert s.observe_run(1000), "first eligible run must be simulated"
        s.note_simulated(1000, 5000)  # 5 cycles/access
        est = s.estimate_skipped(200)
        assert est == 200 * 5

    def test_ewma_tracks_recent_cost(self):
        s = RunSampler(SamplingConfig(rate=0.5, min_run=1), seed=1)
        s.note_simulated(100, 1000)   # 10 c/a
        s.note_simulated(100, 30_00)  # 30 c/a -> ewma 15
        assert s.estimate_skipped(100) == 1500

    def test_scale_dilutes_with_scalar_accesses(self):
        s = RunSampler(SamplingConfig(rate=0.5, min_run=64), seed=1)
        s.observe_run(1000)
        s.note_simulated(1000, 1000)
        for _ in range(1000):
            s.note_scalar()
        # 2000 issued, 0 skipped: nothing to extrapolate.
        assert s.scale() == 1.0
        s.observe_run(1000)
        s.estimate_skipped(1000)  # force one skip into the tallies
        assert s.scale() == pytest.approx(3000 / 2000)

    def test_to_meta_round_trips_tallies(self):
        s = RunSampler(SamplingConfig(rate=0.25, min_run=64, seed=9), seed=9)
        s.observe_run(100)
        s.note_simulated(100, 400)
        meta = s.to_meta()
        assert meta["sampling_rate"] == "0.25"
        assert meta["sampling_issued_accesses"] == "100"
        assert float(meta["sampling_scale"]) == 1.0


class TestActivationSeam:
    def test_no_session_no_sampler(self):
        assert active_config() is None
        assert SimProcess(tiny_machine()).sampler is None

    def test_session_attaches_to_new_processes(self):
        with sampling(rate=0.5, seed=3) as cfg:
            p = SimProcess(tiny_machine())
            assert p.sampler is not None
            assert p.sampler.config is cfg
        assert active_config() is None
        assert SimProcess(tiny_machine()).sampler is None

    def test_processes_derive_independent_streams(self):
        with sampling(rate=0.5, seed=3):
            a = SimProcess(tiny_machine(), pid=0).sampler
            b = SimProcess(tiny_machine(), pid=1).sampler
        for s in (a, b):  # prime the EWMA so draws actually happen
            s.observe_run(100)
            s.note_simulated(100, 500)
        da = [a.observe_run(100) for _ in range(300)]
        db = [b.observe_run(100) for _ in range(300)]
        assert da != db

    def test_sessions_restore_previous(self):
        with sampling(rate=0.5) as outer:
            with sampling(rate=0.25):
                assert active_config().rate == 0.25
            assert active_config() is outer


def _run_storm(prog: MiniProgram, n_runs: int = 40, run_len: int = 512):
    ctx = prog.master_ctx()
    a = ctx.alloc_array("A", (n_runs * 64 + run_len,), line=20)
    ip = ctx.ip(10)
    for i in range(n_runs):
        base, count, stride = a.flat_run(i * 64, run_len)
        ctx.load_run(base, count, stride, ip)
    return ctx


class TestCtxIntegration:
    def test_skipped_runs_touch_no_machine_state(self):
        with sampling(rate=0.25, min_run=64, seed=5):
            prog = MiniProgram()
        sampler = prog.process.sampler
        baseline = hierarchy_state(prog.machine.hierarchy)
        _run_storm(prog)
        assert sampler.skipped_runs > 0
        # Simulated accesses reached the hierarchy; skipped ones did not.
        assert prog.machine.hierarchy.load_count == sampler.simulated_accesses
        assert prog.machine.hierarchy.load_count < sampler.issued_accesses
        assert hierarchy_state(prog.machine.hierarchy) != baseline

    def test_skipped_runs_advance_clock_and_counters(self):
        with sampling(rate=0.25, min_run=64, seed=5):
            prog = MiniProgram()
        _run_storm(prog)
        sampler = prog.process.sampler
        t = prog.process.master
        assert t.mem_count == sampler.issued_accesses
        assert sampler.estimated_cycles > 0
        assert t.clock > sampler.estimated_cycles  # simulated + estimated

    def test_skipped_runs_deliver_no_pmu_samples(self):
        def storm(sampled: bool):
            with sampling(rate=0.25, min_run=64, seed=5):
                prog = MiniProgram() if sampled else None
            if prog is None:
                prog = MiniProgram()
            rec = _SampleRecorder()
            prog.process.hooks.append(rec)
            prog.process.pmu = EBSEngine(period=16, skid=2, seed=3)
            _run_storm(prog)
            return prog, rec

        full_prog, full_rec = storm(sampled=False)
        samp_prog, samp_rec = storm(sampled=True)
        assert len(samp_rec.samples) < len(full_rec.samples)
        # The sampled stream is a subsequence in spirit: every delivered
        # sample came from a really-simulated access.
        assert samp_prog.process.master.mem_count == full_prog.process.master.mem_count

    def test_same_seed_reproduces_identical_profiles(self):
        from repro.parallel.registry import run_app_rank

        def run():
            with sampling(rate=0.25, min_run=64, seed=11):
                return run_app_rank("amg2006", 0, 1).canonical_bytes()

        assert run() == run()

    def test_rank_db_meta_stamped(self):
        from repro.parallel.registry import run_app_rank

        with sampling(rate=0.25, min_run=64, seed=11):
            db = run_app_rank("amg2006", 0, 1)
        assert "sampling_scale" in db.meta
        assert int(db.meta["sampling_issued_accesses"]) > 0
        assert int(db.meta["elapsed_cycles"]) > 0
        plain = run_app_rank("amg2006", 0, 1)
        assert "sampling_scale" not in plain.meta
        assert int(plain.meta["elapsed_cycles"]) > 0


class TestObsFold:
    def test_sampler_tallies_exported_as_gauges(self):
        from repro.obs import observing

        with observing() as session:
            with sampling(rate=0.25, min_run=64, seed=5):
                prog = MiniProgram()
            _run_storm(prog)
        session.finalize()
        labels = {"process": prog.process.name}
        reg = session.metrics
        assert reg.value("repro_sim_sampling_skipped_runs", labels) > 0
        assert reg.value("repro_sim_sampling_scale", labels) > 1.0
        assert reg.value("repro_sim_sampling_issued_accesses", labels) == float(
            prog.process.sampler.issued_accesses
        )

    def test_no_gauges_without_sampler(self):
        from repro.obs import observing

        with observing() as session:
            prog = MiniProgram()
            _run_storm(prog)
        session.finalize()
        assert "repro_sim_sampling_scale" not in session.metrics.metric_names()


class TestFidelityBounds:
    """The acceptance criterion: divergence within the documented bound
    on every bundled app preset (smoke scale)."""

    @pytest.mark.parametrize(
        "app", ["amg2006", "lulesh", "nw", "streamcluster", "sweep3d"]
    )
    def test_app_within_bounds(self, app):
        from repro.parallel.fidelity import measure_fidelity

        report = measure_fidelity(
            app, preset="smoke", rate=0.25, min_run=64, seed=7
        )
        assert report.within(MAX_METRIC_REL_ERR, MAX_SHARE_DELTA), (
            f"{app}: max metric rel_err {report.max_metric_rel_err:.4f}, "
            f"max share delta {report.max_share_delta:.4f}"
        )

    def test_report_shape(self):
        from repro.core.metrics import MetricKind
        from repro.parallel.fidelity import measure_fidelity, render_fidelity

        report = measure_fidelity("amg2006", rate=0.25, seed=7)
        assert {m.metric for m in report.metrics} == {k.value for k in MetricKind}
        assert report.skipped_accesses > 0
        assert report.scale > 1.0
        text = render_fidelity(report)
        assert "max metric rel_err" in text
        assert report.app in text
