"""CCT: path insertion, coalescing, merging, serialization round trip."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import (
    CCT,
    CCTNode,
    HEAP_MARKER_INFO,
    HEAP_MARKER_KEY,
    KIND_FRAME,
    KIND_IP,
)
from repro.core.metrics import MetricKind, MetricVector
from repro.errors import ProfileError
from repro.pmu.sample import Sample


def _sample(latency=10, level=3, period=64, tlb=False, store=False) -> Sample:
    return Sample(
        event="T",
        precise_ip=1,
        interrupt_ip=1,
        ea=0x100,
        latency=latency,
        level=level,
        tlb_miss=tlb,
        is_store=store,
        period=period,
    )


def _frame(name, site=0):
    return ((KIND_FRAME, name, site), {"label": name})


def _ip(name, line, slot=0):
    return ((KIND_IP, name, line, slot), {"label": f"{name}:{line}"})


class TestInsertion:
    def test_insert_creates_chain(self):
        cct = CCT("heap")
        leaf = cct.insert_path([_frame("main"), _frame("work"), _ip("work", 10)])
        assert cct.node_count() == 4  # root + 3
        assert leaf.key[0] == KIND_IP

    def test_common_prefix_coalesced(self):
        cct = CCT("heap")
        cct.insert_path([_frame("main"), _frame("work"), _ip("work", 10)])
        cct.insert_path([_frame("main"), _frame("work"), _ip("work", 11)])
        assert cct.node_count() == 5  # shared main/work prefix

    def test_distinct_callsites_distinct_nodes(self):
        cct = CCT("heap")
        cct.insert_path([_frame("main"), ((KIND_FRAME, "work", 4), None)])
        cct.insert_path([_frame("main"), ((KIND_FRAME, "work", 8), None)])
        assert cct.node_count() == 4

    def test_add_sample_accumulates_exclusive(self):
        cct = CCT("heap")
        path = [_frame("main"), _ip("main", 5)]
        cct.add_sample_at(path, _sample(latency=10))
        leaf = cct.add_sample_at(path, _sample(latency=7))
        assert leaf.metrics.samples == 2
        assert leaf.metrics.latency == 17

    def test_info_filled_in_later(self):
        cct = CCT("x")
        key = (KIND_FRAME, "f", 0)
        cct.insert_path([(key, None)])
        cct.insert_path([(key, {"label": "f!"})])
        assert cct.root.children[key].info == {"label": "f!"}


class TestMetrics:
    def test_metric_vector_add_sample(self):
        m = MetricVector()
        m.add_sample(_sample(latency=5, level=4, period=32, tlb=True, store=True))
        assert m.samples == 1
        assert m.latency == 5
        assert m.events == 32
        assert m.remote == 1
        assert m.tlb_misses == 1
        assert m.stores == 1

    def test_get_by_kind(self):
        m = MetricVector()
        m.add_sample(_sample(latency=5, level=4))
        assert m.get(MetricKind.SAMPLES) == 1
        assert m.get(MetricKind.LATENCY) == 5
        assert m.get(MetricKind.REMOTE) == 1
        assert m.get(MetricKind.EVENTS) == 64
        assert m.get(MetricKind.TLB_MISS) == 0

    def test_is_zero(self):
        assert MetricVector().is_zero()
        m = MetricVector()
        m.add_sample(_sample())
        assert not m.is_zero()

    def test_dict_roundtrip(self):
        m = MetricVector()
        m.add_sample(_sample(latency=3, level=2))
        m2 = MetricVector.from_dict(m.as_dict())
        assert m2.as_dict() == m.as_dict()


class TestInclusive:
    def test_inclusive_sums_subtree(self):
        cct = CCT("heap")
        cct.add_sample_at([_frame("main"), _ip("main", 5)], _sample(latency=10))
        cct.add_sample_at([_frame("main"), _frame("work"), _ip("work", 9)], _sample(latency=20))
        main = cct.root.children[(KIND_FRAME, "main", 0)]
        assert main.inclusive().latency == 30
        assert main.inclusive_value(MetricKind.LATENCY) == 30
        assert cct.total(MetricKind.SAMPLES) == 2

    def test_exclusive_at_interior_nodes(self):
        cct = CCT("heap")
        # Sample attributed at an interior frame (possible for leaf-less paths)
        cct.add_sample_at([_frame("main")], _sample(latency=1))
        cct.add_sample_at([_frame("main"), _ip("main", 5)], _sample(latency=2))
        main = cct.root.children[(KIND_FRAME, "main", 0)]
        assert main.metrics.latency == 1       # exclusive
        assert main.inclusive().latency == 3   # inclusive


class TestMerge:
    def _tree(self, spec):
        """spec: list of (path_names, latency)."""
        cct = CCT("heap")
        for names, latency in spec:
            path = [_frame(n) for n in names[:-1]] + [_ip(names[-1], 1)]
            cct.add_sample_at(path, _sample(latency=latency))
        return cct

    def test_merge_disjoint_paths(self):
        a = self._tree([(("main", "f", "f"), 5)])
        b = self._tree([(("main", "g", "g"), 7)])
        a.merge(b)
        assert a.total(MetricKind.LATENCY) == 12
        assert a.node_count() == 6  # root, main, f, f-ip, g, g-ip

    def test_merge_overlapping_paths_adds_metrics(self):
        a = self._tree([(("main", "f"), 5)])
        b = self._tree([(("main", "f"), 7)])
        a.merge(b)
        assert a.node_count() == 3
        assert a.total(MetricKind.LATENCY) == 12

    def test_merge_name_mismatch_raises(self):
        with pytest.raises(ProfileError):
            CCT("heap").merge(CCT("static"))

    def test_merge_key_mismatch_raises(self):
        a = CCTNode(("root", "x"))
        b = CCTNode(("root", "y"))
        with pytest.raises(ProfileError):
            a.merge(b)

    def test_merge_does_not_alias_source(self):
        a = self._tree([])
        b = self._tree([(("main", "f"), 5)])
        a.merge(b)
        b.add_sample_at([_frame("main"), _ip("f", 1)], _sample(latency=100))
        assert a.total(MetricKind.LATENCY) == 5  # deep-copied on merge

    def test_clone_independent(self):
        a = self._tree([(("main", "f"), 5)])
        c = a.clone()
        c.add_sample_at([_frame("main"), _ip("f", 1)], _sample(latency=1))
        assert a.total(MetricKind.LATENCY) == 5
        assert c.total(MetricKind.LATENCY) == 6

    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("abcd"), min_size=1, max_size=4),
                st.integers(1, 100),
            ),
            max_size=20,
        ),
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("abcd"), min_size=1, max_size=4),
                st.integers(1, 100),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=40)
    def test_merge_conserves_totals(self, spec_a, spec_b):
        a = self._tree(spec_a)
        b = self._tree(spec_b)
        total = a.total(MetricKind.LATENCY) + b.total(MetricKind.LATENCY)
        samples = a.total(MetricKind.SAMPLES) + b.total(MetricKind.SAMPLES)
        a.merge(b)
        assert a.total(MetricKind.LATENCY) == total
        assert a.total(MetricKind.SAMPLES) == samples

    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
                st.integers(1, 10),
            ),
            max_size=10,
        ),
        st.lists(
            st.tuples(
                st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
                st.integers(1, 10),
            ),
            max_size=10,
        ),
    )
    @settings(max_examples=30)
    def test_merge_commutative_in_totals_and_shape(self, spec_a, spec_b):
        ab = self._tree(spec_a)
        ab.merge(self._tree(spec_b))
        ba = self._tree(spec_b)
        ba.merge(self._tree(spec_a))
        assert ab.node_count() == ba.node_count()
        assert ab.total(MetricKind.LATENCY) == ba.total(MetricKind.LATENCY)


class TestWalkAndLabels:
    def test_walk_visits_all(self):
        cct = CCT("x")
        cct.insert_path([_frame("a"), _frame("b"), _ip("b", 2)])
        labels = {n.key for n in cct.root.walk()}
        assert len(labels) == 4

    def test_labels(self):
        cct = CCT("heap")
        leaf = cct.insert_path(
            [_frame("main"), (HEAP_MARKER_KEY, HEAP_MARKER_INFO), _ip("work", 9)]
        )
        assert leaf.label().startswith("work: line 9")
        marker = cct.root.children[(KIND_FRAME, "main", 0)].children[HEAP_MARKER_KEY]
        assert marker.label() == "heap data accesses"
        assert cct.root.label() == "heap"

    def test_find(self):
        cct = CCT("x")
        cct.insert_path([_frame("a"), _ip("a", 1)])
        found = cct.root.find(lambda n: n.key[0] == KIND_IP)
        assert len(found) == 1
