"""Unit tests for tools/reprolint.py (determinism/hygiene AST lint)."""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _load_reprolint():
    spec = importlib.util.spec_from_file_location(
        "reprolint", REPO / "tools" / "reprolint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


reprolint = _load_reprolint()


def _rules(source: str, **kwargs) -> list[str]:
    findings = reprolint.lint_source(source, Path("x.py"), **kwargs)
    return [rule for _line, rule, _msg in findings]


class TestRules:
    def test_bare_except_flagged(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert _rules(src) == ["R001"]

    def test_typed_except_ok(self):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert _rules(src) == []

    def test_mutable_default_list_literal(self):
        assert _rules("def f(a, b=[]):\n    pass\n") == ["R002"]

    def test_mutable_default_dict_constructor(self):
        assert _rules("def f(*, b=dict()):\n    pass\n") == ["R002"]

    def test_none_default_ok(self):
        assert _rules("def f(a, b=None, c=(), d=0):\n    pass\n") == []

    def test_import_random_flagged(self):
        assert _rules("import random\n") == ["R003"]
        assert _rules("from random import choice\n") == ["R003"]

    def test_time_time_flagged_but_perf_counter_ok(self):
        assert _rules("import time\nt = time.time()\n") == ["R003"]
        assert _rules("import time\nt = time.perf_counter()\n") == []

    def test_datetime_now_flagged(self):
        assert _rules("import datetime\nd = datetime.now()\n") == ["R003"]
        assert _rules("from datetime import date\nd = date.today()\n") == ["R003"]

    def test_rng_facade_exempt(self):
        src = "import random\nt = time.time()\n"
        assert _rules(src, rng_exempt=True) == []

    def test_print_flagged_only_in_library(self):
        src = "print('hi')\n"
        assert _rules(src, in_library=True) == ["R004"]
        assert _rules(src, in_library=False) == []

    def test_syntax_error_reported_not_raised(self):
        assert _rules("def broken(:\n") == ["R000"]

    def test_classify_paths(self):
        lib, _, _, _ = reprolint._classify(Path("src/repro/sim/runtime.py"))
        assert lib
        tools, _, _, _ = reprolint._classify(Path("src/repro/tools/hpcview.py"))
        assert not tools
        _, rng, _, _ = reprolint._classify(Path("src/repro/util/rng.py"))
        assert rng
        test, _, _, _ = reprolint._classify(Path("tests/test_x.py"))
        assert not test


class TestR005ObsClockDiscipline:
    """R005: only the clock facade may touch ``time`` inside repro.obs."""

    def test_time_import_flagged_in_obs(self):
        assert _rules("import time\n", obs_restricted=True) == ["R005"]
        assert _rules("from time import perf_counter\n", obs_restricted=True) == [
            "R005"
        ]

    def test_wall_clock_call_flagged_in_obs(self):
        # perf_counter is fine under R003 (it is monotonic, not wall
        # time) but still banned in repro.obs outside the facade.
        src = "t = time.perf_counter()\n"
        assert _rules(src, obs_restricted=True) == ["R005"]
        assert _rules(src, obs_restricted=False) == []

    def test_time_time_gets_both_rules(self):
        rules = _rules("t = time.time()\n", obs_restricted=True)
        assert sorted(rules) == ["R003", "R005"]

    def test_unrestricted_module_unaffected(self):
        assert _rules("import time\nt = time.perf_counter()\n") == []

    def test_classify_obs_paths(self):
        _, _, obs, _ = reprolint._classify(Path("src/repro/obs/trace.py"))
        assert obs
        _, _, clock, _ = reprolint._classify(Path("src/repro/obs/clock.py"))
        assert not clock
        _, _, other, _ = reprolint._classify(Path("src/repro/sim/process.py"))
        assert not other


class TestR006ExitDiscipline:
    """R006: library code may not decide the process exit code."""

    def test_sys_exit_flagged_in_library(self):
        src = "import sys\nsys.exit(1)\n"
        assert _rules(src, in_library=True) == ["R006"]
        assert _rules(src, in_library=False) == []

    def test_raise_systemexit_flagged_in_library(self):
        assert _rules("raise SystemExit(2)\n", in_library=True) == ["R006"]
        assert _rules("raise SystemExit\n", in_library=True) == ["R006"]
        assert _rules("raise SystemExit(2)\n", in_library=False) == []

    def test_other_raise_ok(self):
        src = "raise ValueError('x')\n"
        assert _rules(src, in_library=True) == []

    def test_reraise_ok(self):
        # A bare re-raise inside a handler names no exception: not R006.
        src = "try:\n    pass\nexcept ValueError:\n    raise\n"
        assert _rules(src, in_library=True) == []

    def test_tools_cli_exempt(self):
        lib, _, _, _ = reprolint._classify(Path("src/repro/tools/hpcview.py"))
        assert not lib  # tools are not library code, so R004/R006 skip them


class TestR007LevelConstants:
    """R007: level arrays must be indexed via LVL_*, not magic integers."""

    def test_literal_index_flagged_in_library(self):
        src = "frac = counts[3] + counts[4]\n"
        assert _rules(src, in_library=True) == ["R007", "R007"]

    def test_attribute_access_flagged(self):
        src = "self.level_counts[0] += 1\n"
        assert _rules(src, in_library=True) == ["R007"]
        assert _rules("h.hop_counts[2] += n\n", in_library=True) == ["R007"]

    def test_constant_name_index_ok(self):
        src = "self.level_counts[LVL_L1] += 1\n"
        assert _rules(src, in_library=True) == []

    def test_variable_index_ok(self):
        assert _rules("h.hop_counts[hops] += 1\n", in_library=True) == []

    def test_slices_and_other_arrays_ok(self):
        assert _rules("head = counts[:2]\n", in_library=True) == []
        assert _rules("x = weights[0]\n", in_library=True) == []

    def test_tests_and_tools_exempt(self):
        # Tests pin concrete orderings on purpose; only library code is held
        # to the symbolic-constant rule.
        assert _rules("assert levels[0] == 7\n", in_library=False) == []


class TestR008ThresholdDiscipline:
    """R008: analysis thresholds must come from the formula registry."""

    def test_float_comparison_flagged_when_restricted(self):
        src = "if share >= 0.03:\n    pass\n"
        assert _rules(src, threshold_restricted=True) == ["R008"]
        assert _rules(src, threshold_restricted=False) == []

    def test_float_on_left_side_flagged(self):
        assert _rules("ok = 0.5 < remote\n", threshold_restricted=True) == [
            "R008"
        ]

    def test_int_literal_comparison_ok(self):
        # Loop bounds / emptiness checks against integers stay legal;
        # only float magic thresholds are banned.
        src = "if n > 0:\n    pass\nif count == 2:\n    pass\n"
        assert _rules(src, threshold_restricted=True) == []

    def test_named_constant_comparison_ok(self):
        src = "if share >= MIN_SHARE:\n    pass\n"
        assert _rules(src, threshold_restricted=True) == []

    def test_float_in_non_compare_context_ok(self):
        # Arithmetic with float literals is fine — the rule targets
        # decision thresholds, not math.
        src = "x = value * 0.5\ny = max(0.0, x)\n"
        assert _rules(src, threshold_restricted=True) == []

    def test_classify_threshold_paths(self):
        _, _, _, sc = reprolint._classify(
            Path("src/repro/staticcheck/analyze.py")
        )
        assert sc
        _, _, _, derived = reprolint._classify(
            Path("src/repro/core/derived.py")
        )
        assert derived
        _, _, _, other = reprolint._classify(Path("src/repro/core/views.py"))
        assert not other
        _, _, _, test = reprolint._classify(Path("tests/test_x.py"))
        assert not test


class TestR009ModelLineAnchors:
    """static_model() bodies may not restate source lines as literals."""

    def test_literal_line_in_alloc_flagged(self):
        src = (
            "def static_model(variant='original'):\n"
            "    model.alloc('main', 45, 'x', 64)\n"
        )
        assert _rules(src) == ["R009"]

    def test_literal_line_kwarg_flagged(self):
        src = (
            "def static_model():\n"
            "    model.access(region, line=163, var='x', weight=1.0)\n"
        )
        assert _rules(src) == ["R009"]

    def test_every_declaration_method_covered(self):
        calls = (
            "model.alloc('f', 1, 'x', 8)",
            "model.call('f', 2, 'g')",
            "model.touch('f', 3, 'x')",
            "model.access('f', 4, 'x', weight=1.0)",
            "model.free('f', 5, 'x')",
            "model.parallel_region('f', 6, 'r', 4)",
        )
        body = "".join(f"    {c}\n" for c in calls)
        src = f"def static_model():\n{body}"
        assert _rules(src) == ["R009"] * len(calls)

    def test_named_constant_ok(self):
        src = (
            "L_ALLOC = 45\n"
            "def static_model():\n"
            "    model.alloc('main', L_ALLOC, 'x', 64)\n"
            "    model.alloc('main', L_ALLOC + 1, 'y', 64)\n"
        )
        assert _rules(src) == []

    def test_other_functions_unaffected(self):
        src = "def run(cfg):\n    model.alloc('main', 45, 'x', 64)\n"
        assert _rules(src) == []

    def test_nested_helper_inside_static_model_flagged(self):
        src = (
            "def static_model():\n"
            "    def declare():\n"
            "        model.touch('main', 50, 'x')\n"
            "    declare()\n"
        )
        assert _rules(src) == ["R009"]

    def test_entry_has_no_line_argument(self):
        # model.entry() takes no line; a same-named non-model call with a
        # non-integer second argument is also fine.
        src = (
            "def static_model():\n"
            "    model.entry('main')\n"
            "    registry.call('main', region, 'g')\n"
        )
        assert _rules(src) == []


class TestUnlintableFiles:
    """Undecodable or unreadable inputs are findings, not crashes."""

    def test_non_utf8_file_reported_with_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "latin1.py"
        bad.write_bytes(b"x = '\xe9'\n")
        status = reprolint.main([str(bad)])
        out = capsys.readouterr().out
        assert status == 1
        assert "R000" in out and "not valid UTF-8" in out

    def test_unparseable_file_reported_with_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        status = reprolint.main([str(bad)])
        out = capsys.readouterr().out
        assert status == 1
        assert "R000" in out and "syntax error" in out

    def test_mixed_tree_reports_bad_and_lints_good(self, tmp_path, capsys):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_bytes(b"\xff\xfe junk")
        (tmp_path / "dirty.py").write_text("try:\n    pass\nexcept:\n    pass\n")
        status = reprolint.main([str(tmp_path)])
        out = capsys.readouterr().out
        assert status == 1
        assert "bad.py:0: R000" in out
        assert "dirty.py:3: R001" in out
        assert "good.py" not in out


class TestRepoIsClean:
    def test_whole_repo_green(self, capsys):
        # Run from the repo root so the default targets resolve.
        cwd = os.getcwd()
        os.chdir(REPO)
        try:
            status = reprolint.main([])
        finally:
            os.chdir(cwd)
        out = capsys.readouterr().out
        assert status == 0, f"reprolint found violations:\n{out}"
