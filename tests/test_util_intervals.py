"""IntervalMap: lookup semantics, overlap rejection, property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.util.intervals import IntervalMap


class TestBasics:
    def test_empty_lookup_returns_none(self):
        m = IntervalMap()
        assert m.lookup(0) is None
        assert m.lookup_interval(123) is None
        assert len(m) == 0

    def test_single_interval_half_open(self):
        m = IntervalMap()
        m.add(10, 20, "a")
        assert m.lookup(10) == "a"
        assert m.lookup(19) == "a"
        assert m.lookup(20) is None
        assert m.lookup(9) is None

    def test_lookup_interval_returns_bounds(self):
        m = IntervalMap()
        m.add(100, 200, "x")
        assert m.lookup_interval(150) == (100, 200, "x")

    def test_multiple_disjoint_intervals(self):
        m = IntervalMap()
        m.add(0, 10, "a")
        m.add(20, 30, "b")
        m.add(10, 20, "c")  # exactly adjacent is legal
        assert m.lookup(5) == "a"
        assert m.lookup(15) == "c"
        assert m.lookup(25) == "b"
        assert len(m) == 3

    def test_iteration_is_sorted(self):
        m = IntervalMap()
        m.add(50, 60, 2)
        m.add(0, 10, 1)
        m.add(70, 80, 3)
        assert [s for s, _, _ in m] == [0, 50, 70]

    def test_covered_bytes(self):
        m = IntervalMap()
        m.add(0, 10, None)
        m.add(100, 130, None)
        assert m.covered_bytes() == 40


class TestErrors:
    def test_empty_interval_rejected(self):
        m = IntervalMap()
        with pytest.raises(AddressError):
            m.add(10, 10, "x")
        with pytest.raises(AddressError):
            m.add(10, 5, "x")

    @pytest.mark.parametrize(
        "start,end",
        [(5, 15), (15, 25), (12, 18), (0, 40), (10, 20)],
    )
    def test_overlap_rejected(self, start, end):
        m = IntervalMap()
        m.add(10, 20, "a")
        with pytest.raises(AddressError):
            m.add(start, end, "b")

    def test_remove_requires_exact_start(self):
        m = IntervalMap()
        m.add(10, 20, "a")
        with pytest.raises(AddressError):
            m.remove(11)
        assert m.remove(10) == "a"
        assert m.lookup(15) is None

    def test_remove_from_empty(self):
        with pytest.raises(AddressError):
            IntervalMap().remove(0)


class TestRemoveReinsert:
    def test_reinsert_after_remove(self):
        m = IntervalMap()
        m.add(10, 20, "a")
        m.remove(10)
        m.add(10, 20, "b")
        assert m.lookup(15) == "b"

    def test_clear(self):
        m = IntervalMap()
        m.add(0, 5, 1)
        m.clear()
        assert len(m) == 0
        m.add(0, 5, 2)  # reusable after clear
        assert m.lookup(0) == 2


@st.composite
def disjoint_intervals(draw):
    """Generate a set of disjoint [start, end) intervals."""
    n = draw(st.integers(0, 30))
    points = draw(
        st.lists(st.integers(0, 10_000), min_size=2 * n, max_size=2 * n, unique=True)
    )
    points.sort()
    return [(points[2 * i], points[2 * i + 1]) for i in range(n)]


class TestProperties:
    @given(disjoint_intervals())
    @settings(max_examples=60)
    def test_every_inserted_point_resolves(self, intervals):
        m = IntervalMap()
        for i, (s, e) in enumerate(intervals):
            m.add(s, e, i)
        for i, (s, e) in enumerate(intervals):
            assert m.lookup(s) == i
            assert m.lookup(e - 1) == i
            mid = (s + e) // 2
            assert m.lookup(mid) == i

    @given(disjoint_intervals(), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_lookup_matches_linear_scan(self, intervals, probe):
        m = IntervalMap()
        for i, (s, e) in enumerate(intervals):
            m.add(s, e, i)
        expected = None
        for i, (s, e) in enumerate(intervals):
            if s <= probe < e:
                expected = i
                break
        assert m.lookup(probe) == expected

    @given(disjoint_intervals())
    @settings(max_examples=40)
    def test_remove_all_leaves_empty(self, intervals):
        m = IntervalMap()
        for i, (s, e) in enumerate(intervals):
            m.add(s, e, i)
        for s, _ in intervals:
            m.remove(s)
        assert len(m) == 0
        assert m.covered_bytes() == 0

    @given(disjoint_intervals())
    @settings(max_examples=40)
    def test_insertion_order_irrelevant(self, intervals):
        forward = IntervalMap()
        backward = IntervalMap()
        for i, (s, e) in enumerate(intervals):
            forward.add(s, e, i)
        for i, (s, e) in reversed(list(enumerate(intervals))):
            backward.add(s, e, i)
        assert list(forward) == list(backward)
