"""SimArray layouts and SimThread call stacks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.sim.arrays import SimArray
from repro.sim.thread import SimThread


class TestArrayLayouts:
    def test_c_order_row_major(self):
        a = SimArray("a", 0, (4, 8), elem=8, order="C")
        assert a.addr(0, 0) == 0
        assert a.addr(0, 1) == 8       # last dim contiguous
        assert a.addr(1, 0) == 64      # row stride = 8 elems

    def test_f_order_column_major(self):
        a = SimArray("a", 0, (4, 8), elem=8, order="F")
        assert a.addr(1, 0) == 8       # first dim contiguous
        assert a.addr(0, 1) == 32      # column stride = 4 elems

    def test_3d_strides(self):
        a = SimArray("a", 1000, (2, 3, 4), elem=4, order="C")
        assert a.addr(1, 2, 3) == 1000 + 4 * (1 * 12 + 2 * 4 + 3)
        f = SimArray("f", 1000, (2, 3, 4), elem=4, order="F")
        assert f.addr(1, 2, 3) == 1000 + 4 * (1 + 2 * 2 + 3 * 6)

    def test_nbytes_and_size(self):
        a = SimArray("a", 0, (10, 10), elem=8)
        assert a.nbytes == 800
        assert a.size == 100
        assert a.end == 800

    def test_flat_addr(self):
        a = SimArray("a", 64, (2, 2), elem=8)
        assert a.flat_addr(0) == 64
        assert a.flat_addr(3) == 64 + 24

    def test_bounds_check(self):
        a = SimArray("a", 0, (3,), elem=8)
        with pytest.raises(ConfigError):
            a.addr(3)
        with pytest.raises(ConfigError):
            a.addr(-1)
        with pytest.raises(ConfigError):
            a.addr(0, 0)  # wrong arity

    def test_unchecked_matches_checked(self):
        a = SimArray("a", 512, (3, 5, 7), elem=4, order="F")
        for i in range(3):
            for j in range(5):
                for k in range(7):
                    assert a.addr(i, j, k) == a.addr_unchecked(i, j, k)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            SimArray("a", 0, ())
        with pytest.raises(ConfigError):
            SimArray("a", 0, (0,))
        with pytest.raises(ConfigError):
            SimArray("a", 0, (1,), elem=0)
        with pytest.raises(ConfigError):
            SimArray("a", 0, (1,), order="X")


class TestTransposedView:
    def test_transpose_permutes_shape(self):
        a = SimArray("flux", 0, (6, 8, 4), elem=8, order="F")
        t = a.transposed_view((0, 2, 1))
        assert t.shape == (6, 4, 8)
        assert t.base == a.base
        assert t.nbytes == a.nbytes

    def test_transpose_changes_stride_pattern(self):
        # Fortran array accessed along dim 1 has long stride; after moving
        # dim 1 to position 0 the same loop becomes unit stride.
        a = SimArray("a", 0, (4, 100), elem=8, order="F")
        long_strides = [a.addr(0, j) for j in range(3)]
        assert long_strides[1] - long_strides[0] == 32
        t = a.transposed_view((1, 0))
        short = [t.addr(j, 0) for j in range(3)]
        assert short[1] - short[0] == 8

    def test_bad_permutation(self):
        a = SimArray("a", 0, (2, 3))
        with pytest.raises(ConfigError):
            a.transposed_view((0, 0))
        with pytest.raises(ConfigError):
            a.transposed_view((0,))

    @given(st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)))
    @settings(max_examples=30)
    def test_transposed_covers_same_addresses(self, shape):
        a = SimArray("a", 4096, shape, elem=8, order="C")
        t = a.transposed_view((2, 0, 1))
        addrs_a = {
            a.addr(i, j, k)
            for i in range(shape[0])
            for j in range(shape[1])
            for k in range(shape[2])
        }
        addrs_t = {
            t.addr(k, i, j)
            for i in range(shape[0])
            for j in range(shape[1])
            for k in range(shape[2])
        }
        # Same memory footprint, bijectively re-indexed.
        assert addrs_t == addrs_a


class TestThread:
    def make(self):
        return SimThread("t", hw_tid=0, numa_node=0, thread_index=0, stack_base=1 << 20)

    def test_push_pop(self, mini):
        th = self.make()
        f1 = th.push_frame(mini.main, 0)
        th.push_frame(mini.work, mini.main.ip(10))
        assert th.depth == 2
        assert th.current_function is mini.work
        th.pop_frame()
        assert th.current_function is mini.main
        th.pop_frame(f1)
        assert th.depth == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            self.make().pop_frame()

    def test_pop_wrong_frame_raises(self, mini):
        th = self.make()
        f1 = th.push_frame(mini.main, 0)
        th.push_frame(mini.work, mini.main.ip(10))
        with pytest.raises(SimulationError):
            th.pop_frame(f1)

    def test_current_function_empty_raises(self):
        with pytest.raises(SimulationError):
            _ = self.make().current_function

    def test_frame_serials_unique(self, mini):
        th = self.make()
        a = th.push_frame(mini.main, 0)
        th.pop_frame()
        b = th.push_frame(mini.main, 0)
        assert a.serial != b.serial

    def test_stack_alloc_disjoint_aligned(self):
        th = self.make()
        a = th.stack_alloc(100)
        b = th.stack_alloc(10)
        assert a % 16 == 0 and b % 16 == 0
        assert b >= a + 100
