"""Differential harness: the batched access path vs. the scalar path.

``MemoryHierarchy.access_run`` / ``Ctx.load_run`` / ``Ctx.store_run``
claim *bit-identical* results to the equivalent sequence of scalar
``access`` / ``load_ip`` / ``store_ip`` calls: same per-access
``(latency, level, tlb_miss)`` stream, same final level counts and
hit/miss counters, same contention charges, same PMU sample streams.
These tests run both paths on twin machines/processes built identically
and compare everything observable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Ctx, DataCentricProfiler, SimProcess, tiny_machine
from repro.util.rng import DeterministicRNG
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.policies import Interleave
from repro.pmu.ebs import EBSEngine
from repro.pmu.ibs import IBSEngine
from tests.conftest import MiniProgram

# ---------------------------------------------------------------------------
# state comparison


def hierarchy_state(h: MemoryHierarchy) -> dict:
    """Everything observable about a hierarchy's accumulated state."""
    return {
        "level_counts": list(h.level_counts),
        "loads": h.load_count,
        "stores": h.store_count,
        "prefetch_hits": h.prefetch_hits,
        "tlb": [(t.hits, t.misses) for t in h.tlb],
        "l1": [(c.hits, c.misses, c.resident_lines()) for c in h.l1],
        "l2": [(c.hits, c.misses, c.resident_lines()) for c in h.l2],
        "l3": [(c.hits, c.misses, c.resident_lines()) for c in h.l3],
        "streams": [list(s) for s in h._streams],
        "stream_rr": list(h._stream_rr),
        "dram": list(h.memmgr.dram_accesses),
        "remote_dram": list(h.memmgr.remote_dram_accesses),
        "queue_cycles": h.contention.total_queue_cycles,
        "window_counts": [h.contention.window_load(n) for n in range(h.contention.n_nodes)],
        "stats": h.stats(),
    }


def scalar_replay(h: MemoryHierarchy, runs) -> list:
    """Drive each run through the scalar path; return the result stream."""
    out = []
    for hw_tid, base, stride, count, home, is_store in runs:
        vaddr = base
        for _ in range(count):
            out.append(h.access(hw_tid, vaddr, home, is_store))
            vaddr += stride
    return out


def batched_replay(h: MemoryHierarchy, runs) -> list:
    out: list = []
    for hw_tid, base, stride, count, home, is_store in runs:
        h.access_run(hw_tid, base, stride, count, home, is_store, record=out)
    return out


def assert_equivalent(runs, prefetch: bool) -> None:
    a = tiny_machine(prefetch=prefetch).hierarchy
    stream_a = scalar_replay(a, runs)
    state_a = hierarchy_state(a)
    total = sum(lat for lat, _, _ in stream_a)
    # Both access_run engines must match the scalar oracle: the PR 1
    # per-page loop ("python") and the columnar one ("vector", which
    # forces vectorization even for short runs).
    for engine in ("python", "vector"):
        b = tiny_machine(prefetch=prefetch, engine=engine).hierarchy
        stream_b = batched_replay(b, runs)
        assert stream_a == stream_b, engine
        assert state_a == hierarchy_state(b), engine
        # access_run's return value is the run-total latency.
        c = tiny_machine(prefetch=prefetch, engine=engine).hierarchy
        assert sum(c.access_run(*run[:5], run[5]) for run in runs) == total, engine


# ---------------------------------------------------------------------------
# hierarchy-level equivalence

run_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),                    # hw_tid (tiny: 4)
    st.integers(min_value=-5000, max_value=1 << 20),          # base (incl. page -1)
    st.sampled_from([0, 1, 3, 4, 8, 16, 64, 100, 256, 4096, 4104,
                     -1, -3, -8, -64, -100, -4096, -4104]),
    st.integers(min_value=0, max_value=200),                  # count
    st.integers(min_value=0, max_value=1),                    # home node
    st.booleans(),                                            # is_store
)


class TestHierarchyDifferential:
    @settings(max_examples=60, deadline=None)
    @given(runs=st.lists(run_strategy, min_size=1, max_size=8), prefetch=st.booleans())
    def test_random_runs_bit_identical(self, runs, prefetch):
        assert_equivalent(runs, prefetch)

    @pytest.mark.parametrize("prefetch", [True, False])
    @pytest.mark.parametrize("stride", [1, 8, 64, 72, 1024, 4096, 4100, -8, -4096])
    def test_strides_crossing_pages(self, stride, prefetch):
        # 600 accesses at |stride| up to a page: crosses many pages and
        # wraps cache sets several times.
        base = 1 << 21 if stride > 0 else (1 << 21) + 600 * -stride
        assert_equivalent([(0, base, stride, 600, 0, False)], prefetch)

    @pytest.mark.parametrize("prefetch", [True, False])
    def test_load_store_mix_remote_home(self, prefetch):
        runs = [
            (0, 0x40000, 8, 300, 1, False),   # remote home for hw_tid 0
            (1, 0x40000, 8, 300, 0, True),
            (2, 0x80000, 64, 150, 1, True),
            (0, 0x40000, 16, 150, 1, False),  # partial reuse of warm lines
        ]
        assert_equivalent(runs, prefetch)

    def test_same_line_short_circuit_heavy(self):
        # stride 0 and sub-line strides maximize the repeat fast path.
        runs = [
            (0, 0x12345, 0, 400, 0, False),
            (0, 0x12345, 4, 400, 0, True),
            (1, 0x54321, 1, 300, 1, False),
        ]
        assert_equivalent(runs, True)

    def test_interleaved_with_scalar_calls(self):
        # Mixing scalar and batched calls on the same hierarchy keeps the
        # combined state identical to all-scalar.
        a = tiny_machine().hierarchy
        b = tiny_machine().hierarchy
        rng = DeterministicRNG(7)
        ops = []
        for _ in range(50):
            ops.append(
                (
                    rng.randint(0, 3),
                    rng.randint(0, (1 << 20) - 1),
                    (8, 64, 4096)[rng.randint(0, 2)],
                    rng.randint(1, 39),
                    rng.randint(0, 1),
                    rng.random() < 0.3,
                )
            )
        stream_a = scalar_replay(a, ops)
        stream_b: list = []
        for i, (hw_tid, base, stride, count, home, is_store) in enumerate(ops):
            if i % 2:
                b.access_run(hw_tid, base, stride, count, home, is_store, record=stream_b)
            else:
                vaddr = base
                for _ in range(count):
                    stream_b.append(b.access(hw_tid, vaddr, home, is_store))
                    vaddr += stride
        assert stream_a == stream_b
        assert hierarchy_state(a) == hierarchy_state(b)

    def test_contention_windows_rotate_identically(self):
        # With window rotation interleaved between runs, queue charges in
        # later windows depend on earlier traffic — still identical.
        a = tiny_machine().hierarchy
        b = tiny_machine().hierarchy
        runs = [(t, 0x100000 + t * 0x40000, 64, 200, 0, False) for t in range(4)]
        stream_a: list = []
        stream_b: list = []
        for run in runs:
            hw_tid, base, stride, count, home, is_store = run
            vaddr = base
            for _ in range(count):
                stream_a.append(a.access(hw_tid, vaddr, home, is_store))
                vaddr += stride
            a.new_window()
        for run in runs:
            b.access_run(*run[:5], run[5], record=stream_b)
            b.new_window()
        assert stream_a == stream_b
        assert hierarchy_state(a) == hierarchy_state(b)

    def test_zero_count_is_noop(self):
        h = tiny_machine().hierarchy
        before = hierarchy_state(h)
        assert h.access_run(0, 0x1000, 8, 0, 0) == 0
        assert hierarchy_state(h) == before


class TestDegenerateStrides:
    """Pinned divergences between the batched loop and the scalar oracle.

    The batched loop's same-page repeat skip used ``cur_page = -1`` as
    its "no page yet" sentinel, so a run whose *first* access really
    lives on page -1 (base in [-page_size, -1]) skipped the initial TLB
    lookup and probed the wrong line-residency state.  Fixed by a None
    sentinel (see ``MemoryHierarchy._access_run_python``); these tests
    keep it fixed, alongside the other degenerate shapes the audit
    covered (stride 0, negative strides, backwards page re-crossing).
    """

    @pytest.mark.parametrize("base", [-4096, -2048, -64, -1])
    @pytest.mark.parametrize("stride", [0, 1, 8])
    def test_first_access_on_page_minus_one(self, base, stride):
        # Page -1 is a real page: its first touch must miss the TLB and
        # install, exactly as the scalar loop does.
        assert_equivalent([(0, base, stride, 40, 0, False)], True)

    @pytest.mark.parametrize("stride", [-1, -3, -8, -64, -100, -4096, -4104])
    def test_negative_strides_cross_pages_backwards(self, stride):
        # Walk downward across several page boundaries, ending below 0.
        assert_equivalent([(0, 2 * 4096 + 17, stride, 150, 0, False)], True)

    @pytest.mark.parametrize("prefetch", [True, False])
    def test_backwards_page_recrossing(self, prefetch):
        # Forward over a page boundary, then back over the same boundary:
        # the repeat-skip must re-probe the TLB on each re-crossing, and
        # the prefetch streams seeded by the forward pass must interact
        # with the backward pass identically on both paths.
        runs = [
            (0, 4096 - 8 * 10, 8, 30, 0, False),    # cross page 0 -> 1
            (0, 4096 + 8 * 19, -8, 30, 0, False),   # re-cross 1 -> 0
            (0, 4096 - 64 * 3, 64, 9, 0, True),     # cross again, line stride
            (0, 4096 + 64 * 5, -64, 9, 0, True),
        ]
        assert_equivalent(runs, prefetch)

    def test_stride_zero_repeats_one_address(self):
        # stride 0 is one line, one page: a single lookup then repeat
        # credits, even at a negative base.
        runs = [
            (0, 0x3456, 0, 100, 0, False),
            (1, -100, 0, 100, 1, True),
            (0, 0x3456, 0, 50, 0, True),
        ]
        assert_equivalent(runs, True)


# ---------------------------------------------------------------------------
# Ctx-level equivalence (page chunking, first touch, PMU delivery)


class _SampleRecorder:
    """Hook capturing the full delivered sample stream."""

    def __init__(self):
        self.samples = []

    def on_module_load(self, process, module):
        pass

    def on_module_unload(self, process, module):
        pass

    def on_thread_create(self, process, thread):
        pass

    def on_alloc(self, process, thread, addr, nbytes, callsite_ip, kind, var=None):
        pass

    def on_free(self, process, thread, addr):
        pass

    def on_sample(self, process, thread, sample):
        self.samples.append(
            (
                thread.name,
                sample.interrupt_ip,
                sample.precise_ip,
                sample.ea,
                sample.latency,
                sample.level,
                sample.tlb_miss,
                sample.is_store,
                sample.is_memory,
            )
        )


def _twin(pmu_factory=None, interleave=False, engine="auto"):
    prog = MiniProgram(machine=tiny_machine(engine=engine))
    if interleave:
        nodes = list(range(prog.machine.n_numa_nodes))
        prog.process.aspace.set_default_policy(Interleave(nodes))
    rec = _SampleRecorder()
    prog.process.hooks.append(rec)
    if pmu_factory is not None:
        prog.process.pmu = pmu_factory()
    ctx = prog.master_ctx()
    return prog, ctx, rec


def _thread_state(prog: MiniProgram) -> tuple:
    t = prog.process.master
    return (t.clock, t.inst_count, t.mem_count, t.pmu_countdown)


def _compare_ctx(scalar_ops, bulk_ops, pmu_factory=None, interleave=False,
                 engine="auto"):
    """Run two op scripts on twin processes and compare everything.

    The scalar script runs on the python engine (its accesses never take
    ``access_run`` anyway); the bulk script runs on ``engine``, so a
    "vector" parametrization checks the PMU sample stream is replayed
    byte-identically from the vectorized path's record.
    """
    pa, ca, ra = _twin(pmu_factory, interleave, engine="python")
    pb, cb, rb = _twin(pmu_factory, interleave, engine=engine)
    scalar_ops(ca)
    bulk_ops(cb)
    assert ra.samples == rb.samples
    assert _thread_state(pa) == _thread_state(pb)
    assert hierarchy_state(pa.machine.hierarchy) == hierarchy_state(pb.machine.hierarchy)
    assert pa.process.aspace.pages_by_node(
        pa.machine.n_numa_nodes
    ) == pb.process.aspace.pages_by_node(pb.machine.n_numa_nodes)


PMU_FACTORIES = {
    "none": None,
    "ibs": lambda: IBSEngine(period=16, seed=11),
    "ebs": lambda: EBSEngine(period=16, skid=4, seed=12),
}


class TestCtxDifferential:
    @pytest.mark.parametrize("engine", ["python", "vector"])
    @pytest.mark.parametrize("pmu", sorted(PMU_FACTORIES))
    @pytest.mark.parametrize("interleave", [False, True])
    def test_load_run_page_crossing(self, pmu, interleave, engine):
        # 3000 unit-stride loads cross ~6 pages; under Interleave each
        # page has a different home node, exercising per-page chunking
        # (and the same-home merge when placement is first-touch).
        def scalar(ctx: Ctx):
            a = ctx.alloc_array("A", (3000,), line=20)
            ip = ctx.ip(10)
            for i in range(3000):
                ctx.load_ip(a.flat_addr(i), ip)

        def bulk(ctx: Ctx):
            a = ctx.alloc_array("A", (3000,), line=20)
            ctx.load_run(*a.flat_run(), ctx.ip(10))

        _compare_ctx(scalar, bulk, PMU_FACTORIES[pmu], interleave, engine)

    @pytest.mark.parametrize("engine", ["python", "vector"])
    @pytest.mark.parametrize("pmu", sorted(PMU_FACTORIES))
    def test_store_run_strided(self, pmu, engine):
        def scalar(ctx: Ctx):
            a = ctx.alloc_array("A", (256, 64), line=20)
            ip = ctx.ip(10)
            base, count, stride = a.axis_run(0, 0, 3)
            for k in range(count):
                ctx.store_ip(base + k * stride, ip)

        def bulk(ctx: Ctx):
            a = ctx.alloc_array("A", (256, 64), line=20)
            ctx.store_run(*a.axis_run(0, 0, 3), ctx.ip(10))

        _compare_ctx(scalar, bulk, PMU_FACTORIES[pmu], engine=engine)

    @pytest.mark.parametrize("engine", ["python", "vector"])
    def test_mixed_loads_stores_with_profiler(self, engine):
        # Full stack: profiler attached, EBS skid, heap + static accesses.
        def body(ctx: Ctx, bulk: bool):
            a = ctx.alloc_array("A", (1200,), line=20, kind="calloc")
            g = ctx.static_array(ctx.process.modules[0].statics[0], (512,))
            ip = ctx.ip(10)
            if bulk:
                ctx.load_run(*a.flat_run(), ip)
                ctx.store_run(*g.flat_run(0, 512), ip)
                ctx.load_run(*a.flat_run(100, 800), ip)
            else:
                for i in range(1200):
                    ctx.load_ip(a.flat_addr(i), ip)
                for i in range(512):
                    ctx.store_ip(g.flat_addr(i), ip)
                for i in range(100, 900):
                    ctx.load_ip(a.flat_addr(i), ip)

        def run(bulk: bool):
            prog = MiniProgram(
                machine=tiny_machine(engine=engine if bulk else "python")
            )
            profiler = DataCentricProfiler(prog.process).attach()
            rec = _SampleRecorder()
            prog.process.hooks.append(rec)
            prog.process.pmu = EBSEngine(period=8, skid=3, seed=5)
            body(prog.master_ctx(), bulk)
            return rec.samples, _thread_state(prog), hierarchy_state(
                prog.machine.hierarchy
            ), profiler.stats.heap_samples, profiler.stats.static_samples

        assert run(False) == run(True)

    def test_stride_runs_delegate_to_bulk_path(self):
        # load_stride/store_stride keep their old scalar semantics.
        def scalar(ctx: Ctx):
            a = ctx.alloc_array("A", (2000,), line=20)
            ip = ctx.ip(10)
            for k in range(500):
                ctx.load_ip(a.base + k * 16, ip)
            for k in range(500):
                ctx.store_ip(a.base + k * 32, ip)

        def bulk(ctx: Ctx):
            a = ctx.alloc_array("A", (2000,), line=20)
            ip = ctx.ip(10)
            ctx.load_stride(a.base, 500, 16, ip)
            ctx.store_stride(a.base, 500, 32, ip)

        _compare_ctx(scalar, bulk, PMU_FACTORIES["ebs"])

    @pytest.mark.parametrize("nbytes", [1, 100, 4096, 4097, 50_000])
    def test_touch_range_matches_scalar_reference(self, nbytes):
        # touch_range now rides store_run; its store sequence must equal
        # the historical scalar loop (start, then each page boundary).
        def scalar(ctx: Ctx):
            addr = ctx.malloc(nbytes, 20)
            page = 1 << ctx.process.machine.spec.page_bits
            ip = ctx.ip(10)
            p = addr & ~(page - 1)
            end = addr + nbytes
            while p < end:
                ctx.store_ip(max(p, addr), ip)
                p += page

        def bulk(ctx: Ctx):
            addr = ctx.malloc(nbytes, 20)
            # touch_range computes the ip from a line; use line 10 to
            # match the reference loop's ip.
            ctx.touch_range(addr, nbytes, 10)

        _compare_ctx(scalar, bulk, PMU_FACTORIES["ebs"])

    def test_calloc_matches_scalar_reference(self):
        from repro.sim.runtime import CALLOC_LINE_COST

        def scalar(ctx: Ctx):
            addr = ctx.malloc(30_000, 20, kind="calloc")
            page = 1 << ctx.process.machine.spec.page_bits
            lines_per_page = page >> ctx.process.machine.hierarchy.line_bits
            ip = ctx.ip(20)
            p = addr & ~(page - 1)
            end = addr + 30_000
            while p < end:
                ctx.store_ip(max(p, addr), ip)
                ctx.thread.clock += (lines_per_page - 1) * CALLOC_LINE_COST
                p += page

        def bulk(ctx: Ctx):
            ctx.calloc(30_000, 20)

        _compare_ctx(scalar, bulk, PMU_FACTORIES["ebs"])

    def test_run_return_value_is_total_latency(self, mini):
        ctx = mini.master_ctx()
        a = ctx.alloc_array("A", (800,), line=20)
        before = ctx.thread.clock
        total = ctx.load_run(*a.flat_run(), ctx.ip(10))
        assert ctx.thread.clock - before == total
        assert total > 0

    def test_negative_count_is_noop(self, mini):
        ctx = mini.master_ctx()
        state = _thread_state(mini)
        assert ctx.load_run(0x5000, -3, 8, ctx.ip(10)) == 0
        assert ctx.store_run(0x5000, 0, 8, ctx.ip(10)) == 0
        assert _thread_state(mini) == state


# ---------------------------------------------------------------------------
# MachineStats / phase attribution parity (telemetry reads these snapshots)


class TestMachineStatsParity:
    """The batched path must leave every MachineStats field — including
    the per-phase attributed deltas that ``SimProcess.phase`` buckets and
    ``repro.obs`` exports as metrics — bit-identical to the scalar path."""

    def _run(self, bulk: bool):
        prog = MiniProgram()
        ctx = prog.master_ctx()
        with prog.process.phase("init"):
            a = ctx.alloc_array("A", (2048,), line=20)
            if bulk:
                ctx.store_run(*a.flat_run(), ctx.ip(10))
            else:
                ip = ctx.ip(10)
                for i in range(2048):
                    ctx.store_ip(a.flat_addr(i), ip)
        with prog.process.phase("solve"):
            if bulk:
                ctx.load_run(*a.flat_run(), ctx.ip(10))
                ctx.load_run(a.base, 512, 64, ctx.ip(10))
            else:
                ip = ctx.ip(10)
                for i in range(2048):
                    ctx.load_ip(a.flat_addr(i), ip)
                for k in range(512):
                    ctx.load_ip(a.base + k * 64, ip)
        return prog

    def test_snapshot_and_phase_stats_identical(self):
        scalar = self._run(bulk=False)
        batched = self._run(bulk=True)
        # Whole-run snapshot: every dataclass field, tuples included.
        assert (
            scalar.machine.hierarchy.stats() == batched.machine.hierarchy.stats()
        )
        assert (
            scalar.machine.hierarchy.stats().to_dict()
            == batched.machine.hierarchy.stats().to_dict()
        )
        # Per-phase attribution: same phases, same cycle and stats deltas.
        assert scalar.process.phase_cycles == batched.process.phase_cycles
        assert set(scalar.process.phase_stats) == {"init", "solve"}
        for name in scalar.process.phase_stats:
            assert (
                scalar.process.phase_stats[name]
                == batched.process.phase_stats[name]
            ), f"phase {name!r} stats diverge between scalar and batched paths"
        assert scalar.process.phase_access_rates() == pytest.approx(
            batched.process.phase_access_rates()
        )

    def test_phase_delta_sums_to_whole_run(self):
        prog = self._run(bulk=True)
        total = prog.machine.hierarchy.stats()
        summed = None
        for stats in prog.process.phase_stats.values():
            summed = stats if summed is None else summed + stats
        # Everything happened inside a phase, so the attributed deltas
        # must reconstruct the whole-run snapshot exactly.
        assert summed == total
