"""PMU engines: IBS, marked events, EBS skid."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.machine.hierarchy import LVL_L1, LVL_LMEM, LVL_RMEM
from repro.pmu.ebs import EBSEngine
from repro.pmu.events import (
    EVENT_PREDICATES,
    PM_MRK_DATA_FROM_L3,
    PM_MRK_DATA_FROM_RMEM,
    PM_MRK_DTLB_MISS,
)
from repro.pmu.ibs import IBSEngine
from repro.pmu.marked import MarkedEventEngine
from repro.pmu.sample import Sample


class _Recorder:
    """Minimal profiler hook capturing delivered samples."""

    def __init__(self):
        self.samples: list[Sample] = []

    def on_sample(self, process, thread, sample):
        self.samples.append(sample)


class _FakeThread:
    def __init__(self):
        self.pmu_countdown = 0
        self.pmu_pending = None
        self.frames = []
        self.name = "fake"


class _FakeProcess:
    def __init__(self):
        self.hooks = [_Recorder()]

    @property
    def recorder(self):
        return self.hooks[0]


def _feed_mem(engine, process, thread, n, level=LVL_LMEM, latency=100, tlb=False):
    for i in range(n):
        engine.note_mem(process, thread, ip=0x1000 + i, ea=0x8000 + 8 * i,
                        latency=latency, level=level, tlb_miss=tlb, is_store=False)


class TestIBS:
    def test_sampling_rate_close_to_period(self):
        engine = IBSEngine(period=64, seed=1)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 6400)
        taken = len(p.recorder.samples)
        assert 70 <= taken <= 130  # ~100 expected

    def test_sample_fields_precise(self):
        engine = IBSEngine(period=8, seed=2)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 100, level=LVL_RMEM, latency=321, tlb=True)
        s = p.recorder.samples[0]
        assert s.ea is not None
        assert s.precise_ip == s.interrupt_ip
        assert s.latency == 321
        assert s.level == LVL_RMEM
        assert s.tlb_miss
        assert s.is_memory
        assert s.period == 8
        assert s.level_name == "RMEM"

    def test_compute_only_yields_nonmem_samples(self, mini):
        engine = IBSEngine(period=16, seed=3)
        p = mini.process
        p.hooks.clear()
        rec = _Recorder()
        p.hooks.append(rec)
        ctx = mini.master_ctx()
        for _ in range(40):
            engine.note_compute(p, ctx.thread, 10)
        assert rec.samples
        assert all(not s.is_memory for s in rec.samples)
        assert all(s.level_name == "NONE" for s in rec.samples)

    def test_jitter_varies_gaps(self):
        engine = IBSEngine(period=64, seed=4, jitter=0.25)
        p, t = _FakeProcess(), _FakeThread()
        positions = []

        class Pos:
            def on_sample(self, process, thread, sample):
                positions.append(sample.precise_ip)

        p.hooks = [Pos()]
        _feed_mem(engine, p, t, 10_000)
        gaps = {b - a for a, b in zip(positions, positions[1:])}
        assert len(gaps) > 3  # not a fixed stride

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            IBSEngine(period=0)

    def test_counts(self):
        engine = IBSEngine(period=4, seed=5)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 100)
        assert engine.samples_taken == len(p.recorder.samples)
        assert engine.mem_samples == engine.samples_taken


class TestMarked:
    def test_only_matching_events_counted(self):
        engine = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=4, seed=1)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 1000, level=LVL_L1)
        assert p.recorder.samples == []
        assert engine.events_counted == 0
        _feed_mem(engine, p, t, 100, level=LVL_RMEM)
        assert engine.events_counted == 100
        assert len(p.recorder.samples) >= 15

    def test_sampled_access_matches_event(self):
        engine = MarkedEventEngine(PM_MRK_DATA_FROM_L3, period=2, seed=2)
        p, t = _FakeProcess(), _FakeThread()
        from repro.machine.hierarchy import LVL_L3

        _feed_mem(engine, p, t, 50, level=LVL_L3)
        assert p.recorder.samples
        assert all(s.level_name == "L3" for s in p.recorder.samples)
        assert all(s.event == PM_MRK_DATA_FROM_L3 for s in p.recorder.samples)

    def test_tlb_event(self):
        engine = MarkedEventEngine(PM_MRK_DTLB_MISS, period=2, seed=3)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 50, tlb=False)
        assert not p.recorder.samples
        _feed_mem(engine, p, t, 50, tlb=True)
        assert p.recorder.samples

    def test_compute_never_triggers(self):
        engine = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=1, seed=4)
        p, t = _FakeProcess(), _FakeThread()
        for _ in range(100):
            engine.note_compute(p, t, 50)
        assert not p.recorder.samples

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigError):
            MarkedEventEngine("PM_MRK_NO_SUCH_EVENT")

    def test_predicates_table(self):
        pred = EVENT_PREDICATES[PM_MRK_DATA_FROM_RMEM]
        assert pred(LVL_RMEM, 0, False)
        assert not pred(LVL_LMEM, 0, False)


class TestEBSSkid:
    def test_interrupt_ip_skids_downstream(self):
        engine = EBSEngine(period=10, skid=3, seed=1)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 200)
        assert p.recorder.samples
        for s in p.recorder.samples:
            # Interrupt lands `skid` memory ops later: IPs step by 1 here.
            assert s.interrupt_ip == s.precise_ip + 3

    def test_precise_fields_describe_triggering_op(self):
        engine = EBSEngine(period=5, skid=2, seed=2)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 100, level=LVL_RMEM, latency=777)
        s = p.recorder.samples[0]
        assert s.latency == 777
        assert s.level == LVL_RMEM
        # EA corresponds to the precise op, not the interrupt op.
        assert s.ea == 0x8000 + 8 * (s.precise_ip - 0x1000)

    def test_zero_skid_equals_precise(self):
        engine = EBSEngine(period=7, skid=0, seed=3)
        p, t = _FakeProcess(), _FakeThread()
        _feed_mem(engine, p, t, 100)
        assert p.recorder.samples
        assert all(s.interrupt_ip == s.precise_ip for s in p.recorder.samples)

    def test_pending_sample_not_lost_with_compute_ops(self, mini):
        engine = EBSEngine(period=4, skid=5, seed=4)
        p = mini.process
        p.hooks.clear()
        rec = _Recorder()
        p.hooks.append(rec)
        ctx = mini.master_ctx()
        t = ctx.thread
        # Trigger on memory ops, then only compute ops retire.
        for i in range(8):
            engine.note_mem(p, t, 0x1000 + i, 0x8000, 100, LVL_LMEM, False, False)
        engine.note_compute(p, t, 50)
        assert rec.samples  # delivered despite no further memory ops

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            EBSEngine(period=0)
        with pytest.raises(ConfigError):
            EBSEngine(skid=-1)
