"""Unit tests for the §2/§6 baseline comparators."""

from __future__ import annotations

import pytest

from repro.core.baselines import CodeCentricProfiler, TracingProfiler
from repro.core.metrics import MetricKind
from repro.pmu.ibs import IBSEngine
from tests.conftest import MiniProgram


@pytest.fixture
def instrumented():
    mini = MiniProgram()
    code = CodeCentricProfiler(mini.process).attach()
    tracer = TracingProfiler(mini.process).attach()
    mini.process.pmu = IBSEngine(period=8, seed=42)
    return mini, code, tracer


def _drive(mini, n=2000):
    ctx = mini.master_ctx()
    arr = ctx.alloc_array("x", (8192,), line=20)
    ip1 = ctx.ip(10, 0)
    ip2 = ctx.ip(10, 1)

    def kern():
        for i in range(n):
            ctx.load_ip(arr.flat_addr((i * 64) % arr.size), ip1)
            if i % 2 == 0:
                ctx.load_ip(arr.flat_addr(i % arr.size), ip2)
            if i % 32 == 0:
                yield

    mini.process.run_serial(kern())
    return ctx


class TestCodeCentric:
    def test_aggregates_by_source_location(self, instrumented):
        mini, code, _ = instrumented
        _drive(mini)
        lines = code.line_costs(MetricKind.LATENCY)
        assert lines
        # Both access slots share mini.c:10 — conflated into one row.
        assert lines[0].location == "mini.c:10"
        assert code.samples > 0

    def test_share_sums_to_at_most_one(self, instrumented):
        mini, code, _ = instrumented
        _drive(mini)
        assert sum(c.share for c in code.line_costs()) <= 1.0 + 1e-9

    def test_render_contains_locations(self, instrumented):
        mini, code, _ = instrumented
        _drive(mini)
        out = code.render(MetricKind.LATENCY, top_n=3)
        assert "mini.c:10" in out
        assert "%" in out

    def test_attach_idempotent(self, mini):
        code = CodeCentricProfiler(mini.process)
        code.attach()
        code.attach()
        assert mini.process.hooks.count(code) == 1

    def test_allocator_events_invisible(self, instrumented):
        mini, code, _ = instrumented
        ctx = mini.master_ctx()
        ctx.malloc(8192, line=20)
        assert code.samples == 0
        assert code.cct.node_count() == 1  # just the root

    def test_samples_by_kind(self, instrumented):
        mini, code, _ = instrumented
        _drive(mini)
        by_latency = code.line_costs(MetricKind.LATENCY)
        by_samples = code.line_costs(MetricKind.SAMPLES)
        assert {c.location for c in by_latency} == {c.location for c in by_samples}


class TestTracing:
    def test_records_every_event(self, instrumented):
        mini, _, tracer = instrumented
        ctx = _drive(mini)
        addr = ctx.malloc(256, line=20)
        ctx.free(addr, line=21)
        assert tracer.alloc_records >= 2  # array + small block
        assert tracer.free_records == 1
        assert tracer.sample_records > 0
        assert tracer.total_records == (
            tracer.alloc_records + tracer.free_records + tracer.sample_records
        )

    def test_trace_size_positive_and_grows(self, instrumented):
        mini, _, tracer = instrumented
        _drive(mini, n=1000)
        first = tracer.trace_bytes()
        _drive(mini, n=1000)
        assert tracer.trace_bytes() > first > 0

    def test_call_paths_optional(self):
        mini = MiniProgram()
        tracer = TracingProfiler(mini.process, record_call_paths=False).attach()
        mini.process.pmu = IBSEngine(period=8, seed=1)
        _drive(mini, n=500)
        assert tracer.frame_records == 0
        assert tracer.sample_records > 0

    def test_trace_dwarfs_compact_profile(self, instrumented):
        from repro.core.profiler import DataCentricProfiler

        mini, _, tracer = instrumented
        profiler = DataCentricProfiler(mini.process).attach()
        _drive(mini, n=4000)
        assert tracer.trace_bytes() > 3 * profiler.finalize().size_bytes()
