"""Placement policies, memory accounting, and controller contention."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine.contention import ControllerContention
from repro.machine.memory import MemoryManager
from repro.machine.policies import Bind, FirstTouch, Interleave, PreferredNode


class TestPolicies:
    def test_first_touch_follows_toucher(self):
        p = FirstTouch()
        assert p.place(toucher_node=2, vpage=77) == 2
        assert p.place(toucher_node=0, vpage=77) == 0

    def test_interleave_round_robin_by_page(self):
        p = Interleave([0, 1, 2, 3])
        placements = [p.place(0, vpage) for vpage in range(8)]
        assert placements == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_interleave_ignores_toucher(self):
        p = Interleave([1, 3])
        assert p.place(0, 0) == p.place(2, 0) == 1

    def test_interleave_subset_of_nodes(self):
        p = Interleave([1, 3])
        assert {p.place(0, v) for v in range(10)} == {1, 3}

    def test_interleave_rejects_empty(self):
        with pytest.raises(ConfigError):
            Interleave([])

    def test_bind_always_same_node(self):
        p = Bind(2)
        assert all(p.place(t, v) == 2 for t in range(4) for v in range(4))

    def test_bind_rejects_negative(self):
        with pytest.raises(ConfigError):
            Bind(-1)

    def test_preferred_behaves_like_bind_without_pressure(self):
        p = PreferredNode(1)
        assert p.place(0, 5) == 1

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=4, unique=True),
           st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_interleave_deterministic_in_vpage(self, nodes, vpage):
        p = Interleave(nodes)
        assert p.place(0, vpage) == p.place(3, vpage) == nodes[vpage % len(nodes)]


class TestMemoryManager:
    def test_page_accounting(self):
        m = MemoryManager(2)
        m.note_page_placed(0)
        m.note_page_placed(0)
        m.note_page_placed(1)
        assert m.pages_on_node == [2, 1]
        m.note_page_released(0)
        assert m.pages_on_node == [1, 1]

    def test_release_underflow_raises(self):
        m = MemoryManager(1)
        with pytest.raises(ConfigError):
            m.note_page_released(0)

    def test_dram_traffic_and_remote(self):
        m = MemoryManager(2)
        m.note_dram_access(0, remote=False)
        m.note_dram_access(0, remote=True)
        m.note_dram_access(1, remote=True)
        assert m.total_dram_accesses() == 3
        assert m.total_remote_accesses() == 2
        assert m.dram_accesses == [2, 1]

    def test_imbalance_even_is_one(self):
        m = MemoryManager(2)
        m.note_dram_access(0, False)
        m.note_dram_access(1, False)
        assert m.imbalance() == pytest.approx(1.0)

    def test_imbalance_all_on_one_node(self):
        m = MemoryManager(4)
        for _ in range(8):
            m.note_dram_access(0, False)
        assert m.imbalance() == pytest.approx(4.0)

    def test_imbalance_empty_is_one(self):
        assert MemoryManager(4).imbalance() == 1.0

    def test_reset_traffic_keeps_pages(self):
        m = MemoryManager(2)
        m.note_page_placed(1)
        m.note_dram_access(1, True)
        m.reset_traffic()
        assert m.total_dram_accesses() == 0
        assert m.pages_on_node == [0, 1]


class TestContention:
    @staticmethod
    def _window(c, loads, n_tids=32):
        """Issue `loads[node]` accesses per node from n_tids threads; rotate."""
        tid = 0
        for node, n in enumerate(loads):
            for _ in range(n):
                c.dram_access(node, tid % n_tids)
                tid += 1
        c.new_window()

    def test_first_window_free(self):
        c = ControllerContention(2, capacity_per_window=4, max_penalty=100)
        assert [c.dram_access(0, t) for t in range(10)] == [0] * 10

    def test_full_imbalance_full_penalty(self):
        c = ControllerContention(4, capacity_per_window=4, max_penalty=100)
        self._window(c, [64, 0, 0, 0])  # all traffic on node 0
        assert c.dram_access(0, 0) == 100
        assert c.dram_access(1, 1) == 0

    def test_balanced_traffic_no_penalty(self):
        c = ControllerContention(4, capacity_per_window=4, max_penalty=100)
        self._window(c, [16, 16, 16, 16])
        assert all(c.congestion_delay(n) == 0 for n in range(4))

    def test_partial_imbalance_partial_penalty(self):
        c = ControllerContention(2, capacity_per_window=4, max_penalty=100)
        self._window(c, [48, 16])  # shares 0.75 / 0.25; fair = 0.5
        assert c.congestion_delay(0) == 50
        assert c.congestion_delay(1) == 0

    def test_light_traffic_ignored(self):
        c = ControllerContention(4, capacity_per_window=64, max_penalty=100)
        self._window(c, [10, 0, 0, 0])  # below min_traffic
        assert c.congestion_delay(0) == 0

    def test_single_thread_cannot_congest(self):
        c = ControllerContention(4, capacity_per_window=4, max_penalty=100)
        self._window(c, [256, 0, 0, 0], n_tids=1)
        assert c.congestion_delay(0) == 0

    def test_concurrency_scales_penalty(self):
        few = ControllerContention(4, capacity_per_window=4, max_penalty=100)
        many = ControllerContention(4, capacity_per_window=4, max_penalty=100)
        self._window(few, [64, 0, 0, 0], n_tids=4)
        self._window(many, [64, 0, 0, 0], n_tids=32)
        assert 0 < few.congestion_delay(0) < many.congestion_delay(0)

    def test_penalty_flat_within_window(self):
        """Fairness: every access in a window pays the same delay."""
        c = ControllerContention(2, capacity_per_window=2, max_penalty=60)
        self._window(c, [30, 0])
        delays = [c.dram_access(0, t) for t in range(20)]
        assert len(set(delays)) == 1

    def test_recovery_after_balanced_window(self):
        c = ControllerContention(2, capacity_per_window=2, max_penalty=100)
        self._window(c, [40, 0])   # hot
        self._window(c, [20, 20])  # balanced
        assert c.congestion_delay(0) == 0

    def test_total_queue_cycles_accumulates(self):
        c = ControllerContention(2, capacity_per_window=2, max_penalty=10)
        self._window(c, [40, 0])
        for t in range(3):
            c.dram_access(0, t)
        assert c.total_queue_cycles == 30

    def test_window_counter(self):
        c = ControllerContention(2)
        c.new_window()
        c.new_window()
        assert c.windows == 2

    def test_single_node_machine_never_penalizes(self):
        c = ControllerContention(1, capacity_per_window=2, max_penalty=100)
        self._window(c, [500])
        assert c.congestion_delay(0) == 0

    def test_spread_traffic_cheaper_than_concentrated(self):
        """The core NUMA-fix mechanism: interleaving beats hammering one node."""
        hot = ControllerContention(4, capacity_per_window=20, max_penalty=50)
        spread = ControllerContention(4, capacity_per_window=20, max_penalty=50)
        hot_cycles = 0
        spread_cycles = 0
        for _ in range(5):
            for i in range(64):
                hot_cycles += hot.dram_access(0, i % 32)
                spread_cycles += spread.dram_access(i % 4, i % 32)
            hot.new_window()
            spread.new_window()
        assert spread_cycles < hot_cycles
        assert spread_cycles == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            ControllerContention(0)
        with pytest.raises(ConfigError):
            ControllerContention(1, capacity_per_window=0)
        with pytest.raises(ConfigError):
            ControllerContention(1, max_penalty=-1)
