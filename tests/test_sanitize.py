"""Sanitizer subsystem: shadow checks, race detection, corpus, clean apps."""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import MiniProgram
from repro.parallel.registry import run_app_rank
from repro.sanitize import SanitizerConfig, sanitizing
from repro.sanitize.race import RaceDetector
from repro.sanitize.report import parse_fail_on
from repro.errors import ConfigError

REPO = Path(__file__).resolve().parents[1]


def _load_corpus():
    spec = importlib.util.spec_from_file_location(
        "defect_corpus", REPO / "examples" / "defects.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


corpus = _load_corpus()


def _one_report(config=None, **kwargs):
    """Run ``fn(ctx, prog)`` under a session; return the report."""
    fn = kwargs.pop("fn")
    with sanitizing(config or SanitizerConfig(**kwargs)) as session:
        prog = MiniProgram()
        ctx = prog.master_ctx()
        fn(ctx, prog)
    return session.report()


# ------------------------------------------------------------- shadow checker


class TestShadowChecker:
    def test_oob_read_names_variable_and_offset(self):
        def fn(ctx, prog):
            buf = ctx.malloc(256, line=20, var="buf")
            ctx.touch_range(buf, 256, line=20)
            ctx.load(buf + 260, line=10)
            ctx.free(buf, line=21)

        report = _one_report(fn=fn)
        (f,) = report.findings
        assert f.kind == "oob-read"
        assert f.variable.name == "buf"
        assert f.offset == 260
        assert f.variable.alloc_location.startswith("main:20")
        assert f.contexts[0].location.startswith("main:10")

    def test_oob_write_left_redzone(self):
        def fn(ctx, prog):
            buf = ctx.malloc(128, line=20, var="buf")
            ctx.touch_range(buf, 128, line=20)
            ctx.store(buf - 8, line=10)
            ctx.free(buf, line=21)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "oob-write"
        assert f.variable.name == "buf"
        assert f.offset == -8

    def test_alignment_slack_is_redzone(self):
        # A 100B request is padded to 112B; bytes 100..111 are slack and
        # must be poisoned like ASan's partial granule.
        def fn(ctx, prog):
            buf = ctx.malloc(100, line=20, var="buf")
            ctx.touch_range(buf, 100, line=20)
            ctx.load(buf + 104, line=10)
            ctx.free(buf, line=21)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "oob-read"

    def test_use_after_free_has_both_contexts(self):
        def fn(ctx, prog):
            p = ctx.malloc(64, line=20, var="p")
            ctx.store(p, line=10)
            ctx.free(p, line=21)
            ctx.load(p, line=11)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "use-after-free"
        assert f.variable.name == "p"
        # The access context plus the freeing context.
        assert len(f.contexts) == 2

    def test_double_free_reported_not_raised(self):
        def fn(ctx, prog):
            p = ctx.malloc(64, line=20, var="p")
            ctx.store(p, line=10)
            ctx.free(p, line=21)
            ctx.free(p, line=22)  # must not raise under the sanitizer

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "double-free"
        assert len(f.contexts) == 2

    def test_invalid_free_interior_pointer(self):
        def fn(ctx, prog):
            p = ctx.malloc(256, line=20, var="p")
            ctx.store(p, line=10)
            ctx.free(p + 32, line=21)
            ctx.free(p, line=22)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "invalid-free"
        assert "interior" in f.detail

    def test_uninit_read_on_fresh_page(self):
        def fn(ctx, prog):
            big = ctx.malloc(4 * 4096, line=20, var="big")
            ctx.load(big + 8192, line=10)
            ctx.touch_range(big, 4 * 4096, line=20)
            ctx.free(big, line=21)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "uninit-read"
        assert f.variable.name == "big"

    def test_calloc_counts_as_initialized(self):
        def fn(ctx, prog):
            z = ctx.calloc(4 * 4096, line=20, var="z")
            ctx.load(z + 8192, line=10)
            ctx.free(z, line=21)

        assert _one_report(fn=fn).findings == []

    def test_leak_reported_only_when_enabled(self):
        def fn(ctx, prog):
            lost = ctx.malloc(512, line=20, var="lost")
            ctx.touch_range(lost, 512, line=20)

        assert _one_report(fn=fn).findings == []  # off by default
        report = _one_report(fn=fn, check_leaks=True)
        (f,) = report.findings
        assert f.kind == "leak"
        assert f.variable.name == "lost"

    def test_quarantine_defers_reuse(self):
        # Freed block's address must not be handed out again immediately,
        # so the stale load is caught instead of hitting a new block.
        def fn(ctx, prog):
            a = ctx.malloc(64, line=20, var="a")
            ctx.store(a, line=10)
            ctx.free(a, line=21)
            b = ctx.malloc(64, line=22, var="b")
            assert b != a  # quarantine holds a's range
            ctx.store(b, line=10)
            ctx.load(a, line=11)  # stale pointer
            ctx.free(b, line=23)

        (f,) = _one_report(fn=fn).findings
        assert f.kind == "use-after-free"
        assert f.variable.name == "a"

    def test_repeated_access_dedups_with_count(self):
        def fn(ctx, prog):
            buf = ctx.malloc(64, line=20, var="buf")
            ctx.touch_range(buf, 64, line=20)
            for _ in range(5):
                ctx.load(buf + 72, line=10)
            ctx.free(buf, line=21)

        (f,) = _one_report(fn=fn).findings
        assert f.count == 5

    def test_anonymous_allocation_gets_site_name(self):
        def fn(ctx, prog):
            buf = ctx.malloc(64, line=20)  # no var name
            ctx.touch_range(buf, 64, line=20)
            ctx.load(buf + 72, line=10)
            ctx.free(buf, line=21)

        (f,) = _one_report(fn=fn).findings
        assert "main:20" in f.variable.name


# ------------------------------------------------------- race & false sharing


def _region_report(worker_of, nbytes=4096, config=None):
    with sanitizing(config or SanitizerConfig()) as session:
        prog = MiniProgram()
        ctx = prog.master_ctx()
        shared = ctx.malloc(nbytes, line=20, var="shared")
        ctx.touch_range(shared, nbytes, line=20)
        ctx.parallel(
            prog.work, lambda wctx, tid: worker_of(wctx, tid, shared), 2, line=30
        )
        ctx.free(shared, line=40)
    return session.report()


class TestRaceDetection:
    def test_write_write_race(self):
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for _ in range(8):
                wctx.store_ip(shared, ip)
                yield

        (f,) = _region_report(worker).findings
        assert f.kind == "race-ww"
        assert f.variable.name == "shared"
        threads = {c.thread for c in f.contexts}
        assert len(threads) == 2  # both threads' contexts
        assert all(c.path for c in f.contexts)

    def test_read_write_race(self):
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for _ in range(8):
                if tid == 0:
                    wctx.store_ip(shared + 8, ip)
                else:
                    wctx.load_ip(shared + 8, ip)
                yield

        (f,) = _region_report(worker).findings
        assert f.kind == "race-rw"

    def test_false_sharing_distinct_offsets_same_line(self):
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for _ in range(12):
                wctx.store_ip(shared + tid * 8, ip)
                yield

        (f,) = _region_report(worker).findings
        assert f.kind == "false-sharing"
        assert f.variable.name == "shared"
        assert "alternations" in f.detail

    def test_disjoint_lines_are_clean(self):
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for i in range(12):
                wctx.store_ip(shared + 2048 * tid + i * 8, ip)
                yield

        assert _region_report(worker).findings == []

    def test_bulk_run_vs_scalar_conflict(self):
        # One thread writes via the batched path, the other reads the same
        # element via the scalar path: still a race.
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for _ in range(4):
                if tid == 0:
                    wctx.store_run(shared, 16, 8, ip)
                else:
                    wctx.load_ip(shared + 64, ip)
                yield

        report = _region_report(worker)
        kinds = {f.kind for f in report.findings}
        assert "race-rw" in kinds

    def test_master_accesses_outside_regions_not_raced(self):
        # Master-thread stores before/after a region are ordered by the
        # fork/join edges: no race with worker accesses.
        def worker(wctx, tid, shared):
            ip = wctx.ip(110)
            for i in range(4):
                wctx.load_ip(shared + tid * 2048, ip)
                yield

        assert _region_report(worker).findings == []

    def test_epochs_do_not_leak_across_regions(self):
        # Thread 0 writes an element in region 1; thread 1 writes it in
        # region 2. The barrier between them orders the accesses: no race.
        with sanitizing(SanitizerConfig()) as session:
            prog = MiniProgram()
            ctx = prog.master_ctx()
            shared = ctx.malloc(1024, line=20, var="shared")
            ctx.touch_range(shared, 1024, line=20)

            def region(writer_tid):
                def worker(wctx, tid):
                    ip = wctx.ip(110)
                    for _ in range(6):
                        if tid == writer_tid:
                            wctx.store_ip(shared, ip)
                        yield

                return worker

            ctx.parallel(prog.work, region(0), 2, line=30)
            ctx.parallel(prog.work, region(1), 2, line=31)
            ctx.free(shared, line=40)
        assert session.report().findings == []

    def test_detector_unit_equal_stride_phase(self):
        det = RaceDetector(line_bits=6, min_alternations=4, max_records=1000)
        # Interleaved odd/even element writes: same span, never same byte.
        det.record(1, "t1", 0x1000, 8, 16, 7, True, ())
        det.record(2, "t2", 0x1008, 8, 16, 8, True, ())
        conflicts, _sharing = det.end_region()
        assert conflicts == []
        det.record(1, "t1", 0x1000, 8, 16, 7, True, ())
        det.record(2, "t2", 0x1010, 8, 16, 8, True, ())  # same phase: collide
        conflicts, _sharing = det.end_region()
        assert len(conflicts) == 1


# ------------------------------------------------------------- defect corpus


@pytest.mark.parametrize("seed", sorted(corpus.SEEDS))
def test_corpus_seed_detected_exactly_once(seed):
    runner, expected = corpus.SEEDS[seed]
    report = corpus.run_seed(seed)
    kinds = [f.kind for f in report.findings]
    if expected is None:
        assert kinds == []
        return
    assert kinds == [expected], f"{seed}: expected one {expected}, got {kinds}"
    (finding,) = report.findings
    assert finding.variable.name == corpus.EXPECTED_VARIABLE[seed]
    assert finding.variable.alloc_location  # allocation context present
    if expected.startswith("race") or expected == "false-sharing":
        threads = {c.thread for c in finding.contexts}
        assert len(threads) == 2, "both threads' contexts required"
        assert all(c.path for c in finding.contexts)


# ----------------------------------------------------------------- clean apps


CLEAN_APPS = ["lulesh", "amg2006", "sweep3d", "nw", "streamcluster"]


@pytest.mark.parametrize("app", CLEAN_APPS)
def test_clean_app_zero_findings(app):
    with sanitizing(SanitizerConfig()) as session:
        run_app_rank(app, 0, 2)
    report = session.report()
    assert report.findings == [], [f.headline() for f in report.findings]


def test_clean_app_optimized_variant_zero_findings():
    # parallel-init stores inside regions (disjoint chunks): must be clean.
    with sanitizing(SanitizerConfig()) as session:
        run_app_rank("streamcluster", 0, 2, variant="parallel-init")
    assert session.report().findings == []


# ------------------------------------------------------------ disabled mode


class TestDisabledMode:
    def test_no_session_no_sanitizer(self):
        prog = MiniProgram()
        assert prog.process.sanitizer is None
        ctx = prog.master_ctx()
        assert ctx._san is None

    def test_sessions_do_not_nest(self):
        with sanitizing():
            with pytest.raises(ConfigError):
                with sanitizing():
                    pass

    def test_fail_on_parsing(self):
        kinds = parse_fail_on("race,oob")
        assert kinds == frozenset(
            {"race-ww", "race-rw", "oob-read", "oob-write"}
        )
        assert parse_fail_on("any") == frozenset(corpus_kinds())
        with pytest.raises(ConfigError):
            parse_fail_on("bogus")

    def test_profiles_byte_identical_with_subsystem_importable(self):
        # The acceptance bar: importing repro.sanitize (without a session)
        # must leave profile output byte-for-byte unchanged.  The baseline
        # run happens in a subprocess that never imports the subsystem.
        code = (
            "from repro.parallel.registry import run_app_rank\n"
            "import sys\n"
            "assert 'repro.sanitize' not in sys.modules\n"
            "baseline = run_app_rank('nw', 0, 2).canonical_bytes()\n"
            "import repro.sanitize\n"
            "from repro.sanitize import Sanitizer, SanitizerConfig\n"
            "again = run_app_rank('nw', 0, 2).canonical_bytes()\n"
            "assert again == baseline, 'profile bytes changed'\n"
            "sys.stdout.write('IDENTICAL %d' % len(baseline))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("IDENTICAL")


def corpus_kinds():
    from repro.sanitize.report import ALL_KINDS

    return ALL_KINDS
