"""DeterministicRNG, RunningStats, and formatting helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fmt import format_table, human_bytes, pct
from repro.util.rng import DeterministicRNG
from repro.util.stats import RunningStats


class TestRNG:
    def test_determinism_same_seed(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_randint_bounds(self):
        rng = DeterministicRNG(7)
        values = [rng.randint(3, 9) for _ in range(500)]
        assert min(values) >= 3
        assert max(values) <= 9
        assert set(values) == set(range(3, 10))  # all values reachable

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randint(5, 4)

    def test_random_unit_interval(self):
        rng = DeterministicRNG(11)
        for _ in range(200):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_geometric_jitter_near_period(self):
        rng = DeterministicRNG(3)
        for _ in range(300):
            p = rng.geometric_jitter(1000, frac=0.1)
            assert 900 <= p <= 1100

    def test_geometric_jitter_minimum_one(self):
        rng = DeterministicRNG(3)
        assert all(rng.geometric_jitter(1) >= 1 for _ in range(50))

    def test_geometric_jitter_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).geometric_jitter(0)

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(9)
        seq = list(range(30))
        shuffled = list(seq)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == seq

    def test_fork_streams_independent(self):
        root = DeterministicRNG(5)
        c1 = root.fork(1)
        c2 = root.fork(2)
        s1 = [c1.next_u64() for _ in range(5)]
        s2 = [c2.next_u64() for _ in range(5)]
        assert s1 != s2
        # Forking does not consume parent state.
        assert DeterministicRNG(5).fork(1).next_u64() == s1[0]


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = RunningStats()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.push(x)
        assert s.count == 8
        assert s.mean == pytest.approx(5.0)
        assert s.minimum == 2.0
        assert s.maximum == 9.0
        assert s.total == pytest.approx(40.0)
        assert s.stddev == pytest.approx(math.sqrt(32 / 7))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_matches_batch_computation(self, xs):
        s = RunningStats()
        for x in xs:
            s.push(x)
        mean = sum(xs) / len(xs)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert s.minimum == min(xs)
        assert s.maximum == max(xs)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=80),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=80),
    )
    @settings(max_examples=50)
    def test_merge_equals_concatenation(self, xs, ys):
        a = RunningStats()
        b = RunningStats()
        c = RunningStats()
        for x in xs:
            a.push(x)
            c.push(x)
        for y in ys:
            b.push(y)
            c.push(y)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-3)
        assert merged.minimum == c.minimum
        assert merged.maximum == c.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        a.push(3.0)
        merged = a.merge(RunningStats())
        assert merged.count == 1
        assert merged.mean == 3.0


class TestFmt:
    def test_pct_basic(self):
        assert pct(1, 4) == "25.0%"
        assert pct(222, 1000) == "22.2%"

    def test_pct_zero_denominator(self):
        assert pct(5, 0) == "0.0%"

    def test_pct_digits(self):
        assert pct(1, 3, digits=2) == "33.33%"

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KB"
        assert human_bytes(8 * 1024 * 1024) == "8.0 MB"

    def test_format_table_alignment(self):
        text = format_table(("name", "n"), [("a", 1), ("bbbb", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")
        # all rows same width structure
        assert len(lines) == 4

    def test_format_table_title(self):
        text = format_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])
