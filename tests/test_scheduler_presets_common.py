"""Scheduler round-robin semantics, machine presets, AppResult helpers."""

from __future__ import annotations

import pytest

from repro import amd_magnycours, intel_ivybridge, power7_node, tiny_machine
from repro.apps.common import AppResult, analyze_profilers, profile_attachment
from repro.errors import ConfigError
from repro.machine.presets import Machine, MachineSpec
from repro.sim.scheduler import drive


class TestDrive:
    def _machine(self):
        return tiny_machine()

    def test_runs_all_generators_to_completion(self):
        machine = self._machine()
        done = []

        def gen(i):
            for _ in range(i):
                yield
            done.append(i)

        drive([gen(3), gen(7), gen(1)], machine.hierarchy, quantum=2)
        assert sorted(done) == [1, 3, 7]

    def test_interleaves_round_robin(self):
        machine = self._machine()
        trace = []

        def gen(tag, steps):
            for i in range(steps):
                trace.append(tag)
                yield

        drive([gen("a", 4), gen("b", 4)], machine.hierarchy, quantum=1)
        # Strict alternation at quantum=1.
        assert trace[:8] == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_quantum_batches_resumes(self):
        machine = self._machine()
        trace = []

        def gen(tag):
            for _ in range(4):
                trace.append(tag)
                yield

        drive([gen("a"), gen("b")], machine.hierarchy, quantum=2)
        assert trace[:4] == ["a", "a", "b", "b"]

    def test_rotates_contention_window_per_round(self):
        machine = self._machine()
        before = machine.hierarchy.contention.windows

        def gen():
            for _ in range(6):
                yield

        drive([gen()], machine.hierarchy, quantum=2)
        # 6 yields / quantum 2 = 3 full rounds (plus the final exhausting one).
        assert machine.hierarchy.contention.windows - before >= 3

    def test_empty_generator_list(self):
        machine = self._machine()
        drive([], machine.hierarchy)  # no-op, no error

    def test_generator_exhausted_mid_quantum(self):
        machine = self._machine()
        done = []

        def gen():
            yield
            done.append(True)

        drive([gen()], machine.hierarchy, quantum=10)
        assert done == [True]


class TestPresets:
    def test_power7_shape(self):
        m = power7_node()
        assert m.n_threads == 128
        assert m.n_numa_nodes == 4
        assert m.topology.smt == 4

    def test_power7_smt1(self):
        m = power7_node(smt=1)
        assert m.n_threads == 32
        assert m.n_numa_nodes == 4

    def test_amd_shape(self):
        m = amd_magnycours()
        assert m.n_threads == 48
        assert m.n_numa_nodes == 8
        assert m.topology.smt == 1

    def test_ivybridge_shape(self):
        m = intel_ivybridge()
        assert m.n_threads == 48
        assert m.n_numa_nodes == 2

    def test_page_size(self):
        assert tiny_machine().page_size == 4096

    def test_cycles_to_seconds(self):
        m = tiny_machine()
        assert m.cycles_to_seconds(m.spec.clock_hz) == pytest.approx(1.0)

    def test_machines_are_independent(self):
        a = power7_node()
        b = power7_node()
        a.hierarchy.access(0, 0x1000, 0)
        assert b.hierarchy.total_accesses() == 0

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="x", sockets=1, cores_per_socket=1, clock_hz=0)

    def test_latency_orderings_all_presets(self):
        for factory in (power7_node, amd_magnycours, intel_ivybridge, tiny_machine):
            lat = factory().spec.latency
            assert lat.l1 < lat.l2 < lat.l3 < lat.local_dram
            assert lat.dram(2) > lat.dram(0) == lat.local_dram


class TestAppResultHelpers:
    def _result(self, cycles, profilers=()):
        return AppResult(
            app="x",
            variant="original",
            elapsed_cycles=cycles,
            elapsed_seconds=cycles / 2e9,
            profilers=list(profilers),
        )

    def test_speedup_over(self):
        fast = self._result(100)
        slow = self._result(150)
        assert fast.speedup_over(slow) == pytest.approx(1.5)
        assert slow.speedup_over(fast) == pytest.approx(100 / 150)

    def test_overhead_vs(self):
        base = self._result(100)
        profiled = self._result(112)
        assert profiled.overhead_vs(base) == pytest.approx(0.12)

    def test_degenerate_inputs(self):
        zero = self._result(0)
        assert zero.speedup_over(self._result(100)) == 0.0
        assert self._result(10).overhead_vs(zero) == 0.0

    def test_profiled_flag(self):
        assert not self._result(1).profiled
        assert self._result(1, profilers=[object()]).profiled

    def test_analyze_profilers_empty(self):
        assert analyze_profilers("x", []) is None

    def test_profile_attachment_installs(self, mini):
        attach = profile_attachment(lambda: None)
        profiler = attach(mini.process)
        assert profiler in mini.process.hooks
        assert mini.process.pmu is None  # factory returned None engine is set
