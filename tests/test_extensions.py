"""§7 extensions: stack attribution, PEBS, Ivy Bridge preset, derived
metrics, and the hpcview CLI."""

from __future__ import annotations

import pytest

from repro import (
    Analyzer,
    DataCentricProfiler,
    IBSEngine,
    MetricKind,
    PEBSEngine,
    ProfilerConfig,
    StorageClass,
    intel_ivybridge,
)
from repro.core.derived import derive_from_machine, derive_from_profile
from repro.core.stackmap import StackDataMap, StackVariable
from repro.errors import ConfigError, ProfileError
from repro.machine.hierarchy import LVL_L1, LVL_LMEM
from tests.conftest import MiniProgram


# ------------------------------------------------------------- stack tracking


class TestStackMap:
    def _var(self, name="buf", thread="t0", fn="work", addr=0x1000, size=256):
        return StackVariable(name, thread, fn, addr, size)

    def test_register_and_lookup(self, mini):
        m = StackDataMap()
        var = m.register(self._var(thread=mini.process.master.name))
        assert m.lookup(mini.process.master, 0x1000) is var
        assert m.lookup(mini.process.master, 0x10FF) is var
        assert m.lookup(mini.process.master, 0x1100) is None

    def test_thread_privacy(self, mini):
        m = StackDataMap()
        m.register(self._var(thread="someone-else"))
        assert m.lookup(mini.process.master, 0x1000) is None

    def test_release(self, mini):
        m = StackDataMap()
        m.register(self._var(thread=mini.process.master.name))
        m.release(mini.process.master.name, 0x1000)
        assert m.lookup(mini.process.master, 0x1000) is None
        assert m.live == 0

    def test_release_unknown_thread_raises(self):
        with pytest.raises(ProfileError):
            StackDataMap().release("nope", 0x1000)

    def test_release_all(self, mini):
        m = StackDataMap()
        name = mini.process.master.name
        m.register(self._var(thread=name, addr=0x1000))
        m.register(self._var(thread=name, addr=0x2000))
        m.release_all(name)
        assert m.live == 0
        assert m.released == 2


class TestStackAttribution:
    def _run(self, track_stack: bool):
        mini = MiniProgram()
        profiler = DataCentricProfiler(
            mini.process, ProfilerConfig(track_stack=track_stack)
        ).attach()
        mini.process.pmu = IBSEngine(period=8, seed=5)
        ctx = mini.master_ctx()
        buf = ctx.declare_stack_var("phi_local", 8192, line=10)
        ip = ctx.ip(10)

        def kern():
            for i in range(3000):
                ctx.load_ip(buf + (i * 8) % 8192, ip)
                if i % 32 == 0:
                    yield

        mini.process.run_serial(kern())
        ctx.leave()
        return profiler, Analyzer("t").add(profiler.finalize()).analyze()

    def test_disabled_by_default_goes_to_unknown(self):
        profiler, exp = self._run(track_stack=False)
        assert profiler.stats.stack_samples == 0
        assert profiler.stats.unknown_samples > 0
        assert exp.storage_share(StorageClass.UNKNOWN, MetricKind.SAMPLES) == 1.0

    def test_enabled_attributes_named_variable(self):
        profiler, exp = self._run(track_stack=True)
        assert profiler.stats.stack_samples > 0
        assert profiler.stats.unknown_samples == 0
        view = exp.top_down(MetricKind.SAMPLES)
        assert view.storage_share(StorageClass.STACK) == 1.0
        var = view.variables[0]
        assert var.storage is StorageClass.STACK
        assert var.name == "phi_local"
        assert var.accesses  # access call paths under the variable node

    def test_release_stops_attribution(self):
        mini = MiniProgram()
        profiler = DataCentricProfiler(
            mini.process, ProfilerConfig(track_stack=True)
        ).attach()
        mini.process.pmu = IBSEngine(period=4, seed=6)
        ctx = mini.master_ctx()
        buf = ctx.declare_stack_var("tmp", 4096, line=10)
        ctx.release_stack_var(buf)
        ip = ctx.ip(10)

        def kern():
            for i in range(1000):
                ctx.load_ip(buf + (i * 8) % 4096, ip)
                if i % 32 == 0:
                    yield

        mini.process.run_serial(kern())
        assert profiler.stats.stack_samples == 0
        assert profiler.stats.unknown_samples > 0

    def test_stack_vars_coalesce_across_threads_by_function_and_name(self):
        """Same local in the same function merges across threads (like
        statics merge by symbol name)."""
        from repro.core.stackmap import KIND_STACK_VAR, stack_var_entry

        a = stack_var_entry(StackVariable("phi", "t0", "work", 0x1000, 64))
        b = stack_var_entry(StackVariable("phi", "t1", "work", 0x9000, 64))
        assert a[0] == b[0] == (KIND_STACK_VAR, "work", "phi")


# ----------------------------------------------------------------------- PEBS


class _Recorder:
    def __init__(self):
        self.samples = []

    def on_sample(self, process, thread, sample):
        self.samples.append(sample)


class _FakeThread:
    def __init__(self):
        self.pmu_countdown = 0
        self.pmu_pending = None
        self.frames = []
        self.name = "fake"


class _FakeProcess:
    def __init__(self):
        self.hooks = [_Recorder()]


class TestPEBS:
    def _feed(self, engine, p, t, n, latency, is_store=False, level=LVL_LMEM):
        for i in range(n):
            engine.note_mem(p, t, 0x100 + i, 0x9000 + 8 * i, latency, level,
                            False, is_store)

    def test_latency_threshold_filters(self):
        engine = PEBSEngine(period=4, latency_threshold=100, seed=1)
        p, t = _FakeProcess(), _FakeThread()
        self._feed(engine, p, t, 200, latency=50)   # too fast to count
        assert engine.events_counted == 0
        assert not p.hooks[0].samples
        self._feed(engine, p, t, 200, latency=150)
        assert engine.events_counted == 200
        assert p.hooks[0].samples

    def test_samples_are_precise(self):
        engine = PEBSEngine(period=2, latency_threshold=0, seed=2)
        p, t = _FakeProcess(), _FakeThread()
        self._feed(engine, p, t, 50, latency=80)
        for s in p.hooks[0].samples:
            assert s.precise_ip == s.interrupt_ip
            assert s.ea is not None
            assert "LOAD_LATENCY" in s.event

    def test_stores_ignored_by_default(self):
        engine = PEBSEngine(period=1, latency_threshold=0, seed=3)
        p, t = _FakeProcess(), _FakeThread()
        self._feed(engine, p, t, 20, latency=80, is_store=True)
        assert not p.hooks[0].samples
        engine2 = PEBSEngine(period=1, latency_threshold=0, seed=3, sample_stores=True)
        self._feed(engine2, p, t, 20, latency=80, is_store=True)
        assert p.hooks[0].samples

    def test_compute_never_fires(self):
        engine = PEBSEngine(period=1, seed=4)
        p, t = _FakeProcess(), _FakeThread()
        for _ in range(100):
            engine.note_compute(p, t, 50)
        assert not p.hooks[0].samples

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            PEBSEngine(period=0)
        with pytest.raises(ConfigError):
            PEBSEngine(latency_threshold=-1)


class TestIvyBridgePreset:
    def test_shape(self):
        m = intel_ivybridge()
        assert m.topology.sockets == 2
        assert m.n_threads == 48
        assert m.n_numa_nodes == 2

    def test_usable_end_to_end_with_pebs(self):
        from repro import Ctx, SimProcess
        from tests.conftest import MiniProgram

        mini = MiniProgram(machine=intel_ivybridge())
        profiler = DataCentricProfiler(mini.process).attach()
        mini.process.pmu = PEBSEngine(period=4, latency_threshold=30, seed=9)
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("hot", (8192,), line=20)
        ip = ctx.ip(10)

        def kern():
            for i in range(4000):
                ctx.load_ip(arr.flat_addr((i * 64) % arr.size), ip)
                if i % 32 == 0:
                    yield

        mini.process.run_serial(kern())
        exp = Analyzer("ivb").add(profiler.finalize()).analyze()
        tops = exp.top_variables(MetricKind.LATENCY, 1)
        assert tops and tops[0].name == "hot"
        # Threshold sampling only records slow accesses.
        view = exp.top_down(MetricKind.LATENCY)
        assert all(a.value > 0 for v in view.variables for a in v.accesses)


# ------------------------------------------------------------ derived metrics


class TestDerivedMetrics:
    def _profiled_run(self, compute_per_access: int):
        mini = MiniProgram()
        profiler = DataCentricProfiler(mini.process).attach()
        mini.process.pmu = IBSEngine(period=16, seed=13)
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("data", (16384,), line=20)
        ip = ctx.ip(10)

        def kern():
            for i in range(4000):
                ctx.load_ip(arr.flat_addr((i * 128) % arr.size), ip)
                ctx.compute(compute_per_access)
                if i % 32 == 0:
                    yield

        mini.process.run_serial(kern())
        exp = Analyzer("d").add(profiler.finalize()).analyze()
        return mini, exp

    def test_memory_bound_detected(self):
        _, exp = self._profiled_run(compute_per_access=2)
        rep = derive_from_profile(exp)
        assert rep.memory_bound
        assert rep.samples > 0
        assert "bound" in rep.verdict()

    def test_compute_bound_detected(self):
        _, exp = self._profiled_run(compute_per_access=3000)
        rep = derive_from_profile(exp)
        assert not rep.memory_bound
        assert "compute-bound" in rep.verdict()

    def test_machine_counters_agree_with_profile(self):
        mini, exp = self._profiled_run(compute_per_access=2)
        rep_prof = derive_from_profile(exp)
        rep_mach = derive_from_machine(mini.machine, mini.process.elapsed_cycles)
        assert rep_prof.memory_bound == rep_mach.memory_bound
        # Both should agree there's no NUMA issue (single-thread, local).
        assert not rep_prof.numa_bound
        assert not rep_mach.numa_bound

    def test_fractions_bounded(self):
        mini, exp = self._profiled_run(compute_per_access=10)
        for rep in (derive_from_profile(exp),
                    derive_from_machine(mini.machine, mini.process.elapsed_cycles)):
            assert 0.0 <= rep.memory_cycle_fraction <= 1.0
            assert 0.0 <= rep.dram_intensity <= 1.0
            assert 0.0 <= rep.remote_intensity <= 1.0
            assert 0.0 <= rep.tlb_intensity <= 1.0


# -------------------------------------------------------------------- hpcview


class TestHpcviewCLI:
    @pytest.fixture()
    def saved_profile(self, tmp_path):
        mini = MiniProgram()
        profiler = DataCentricProfiler(mini.process).attach()
        mini.process.pmu = IBSEngine(period=8, seed=17)
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("payload", (8192,), line=20)
        ip = ctx.ip(10)

        def kern():
            for i in range(3000):
                ctx.load_ip(arr.flat_addr((i * 64) % arr.size), ip)
                if i % 32 == 0:
                    yield

        mini.process.run_serial(kern())
        from repro.tools.hpcview import save_profile

        path = tmp_path / "rank0.rpdb"
        save_profile(profiler.finalize(), path)
        return str(path)

    def test_info(self, saved_profile, capsys):
        from repro.tools.hpcview import main

        assert main(["info", saved_profile]) == 0
        out = capsys.readouterr().out
        assert "cct nodes" in out

    def test_top_and_table(self, saved_profile, capsys):
        from repro.tools.hpcview import main

        main(["top", saved_profile, "--metric", "latency", "-n", "3"])
        out = capsys.readouterr().out
        assert "payload" in out
        main(["table", saved_profile, "--metric", "samples"])
        assert "payload" in capsys.readouterr().out

    def test_bottom(self, saved_profile, capsys):
        from repro.tools.hpcview import main

        main(["bottom", saved_profile, "--metric", "samples"])
        assert "alloc site" in capsys.readouterr().out

    def test_advise(self, saved_profile, capsys):
        from repro.tools.hpcview import main

        main(["advise", saved_profile, "--metric", "latency"])
        out = capsys.readouterr().out
        assert "triage:" in out

    def test_merge_roundtrip(self, saved_profile, tmp_path, capsys):
        from repro.tools.hpcview import main

        out_path = tmp_path / "job.rpdb"
        main(["merge", saved_profile, saved_profile_copy(saved_profile, tmp_path),
              "-o", str(out_path)])
        assert out_path.exists()
        main(["table", str(out_path), "--metric", "samples"])
        assert "payload" in capsys.readouterr().out

    def test_unknown_metric_rejected(self, saved_profile):
        from repro.tools.hpcview import main

        with pytest.raises(SystemExit):
            main(["top", saved_profile, "--metric", "bogus"])


def saved_profile_copy(path: str, tmp_path) -> str:
    import shutil

    copy = tmp_path / "rank1.rpdb"
    shutil.copy(path, copy)
    # Rename the process inside so the merge sees two distinct ranks.
    from repro.core.profiledb import ProfileDB

    db = ProfileDB.from_bytes(copy.read_bytes())
    renamed = ProfileDB("rank1")
    for profile in db.all_profiles():
        clone = profile.clone()
        clone.thread_name = f"rank1.{profile.thread_name}"
        renamed.add_thread(clone)
    copy.write_bytes(renamed.to_bytes())
    return str(copy)
