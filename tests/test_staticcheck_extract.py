"""End-to-end tests for AST-driven model extraction and the drift gate.

Three contracts, in order of importance:

- every bundled app x variant extracts a model that is structurally
  identical to the hand-registered declarations (the drift gate is
  clean on an unmodified tree);
- the hazard analyzer reaches the same findings on the extracted model
  as on the registered one, so extraction can stand in for the hand
  model in CI;
- the gate is *sensitive*: moving a parallel region or an allocation
  site without updating the registered model reports a divergence.
"""

from __future__ import annotations

import types
from dataclasses import replace
from importlib import import_module

import pytest

from repro.staticcheck import (
    analyze_model,
    app_variants,
    build_static_model,
    diff_models,
    extract_model,
)

APPS = ("nw", "streamcluster", "lulesh", "amg2006", "sweep3d")
ALL_COMBOS = [(app, variant) for app in APPS for variant in app_variants(app)]

# Variants whose registered model predicts no placement hazard; the
# extracted model must stay equally silent.
FIXED_VARIANTS = (
    ("nw", "libnuma"),
    ("streamcluster", "parallel-init"),
    ("lulesh", "both"),
)


@pytest.fixture(scope="module")
def extractions():
    cache: dict = {}

    def get(app, variant="original"):
        if (app, variant) not in cache:
            cache[(app, variant)] = extract_model(app, variant)
        return cache[(app, variant)]

    return get


def _finding_keys(model):
    # Sorted: the report orders findings by static share, and access
    # weights are estimates the drift gate deliberately leaves out, so
    # near-ties may rank differently between the two models.
    return sorted(
        (f.code, f.variable, f.site, f.contexts)
        for f in analyze_model(model).findings
    )


class TestExtractionAgreesWithRegistry:
    @pytest.mark.parametrize("app,variant", ALL_COMBOS)
    def test_drift_gate_clean_on_unmodified_tree(
        self, extractions, app, variant
    ):
        extraction = extractions(app, variant)
        registered = build_static_model(app, variant)
        diff = diff_models(
            registered, extraction.model, extraction.inexact_sizes
        )
        assert diff.ok, diff.render()

    @pytest.mark.parametrize("app,variant", ALL_COMBOS)
    def test_findings_parity(self, extractions, app, variant):
        registered = build_static_model(app, variant)
        extracted = extractions(app, variant).model
        assert _finding_keys(extracted) == _finding_keys(registered)

    @pytest.mark.parametrize("app,variant", FIXED_VARIANTS)
    def test_fixed_variants_extract_clean_of_h001(
        self, extractions, app, variant
    ):
        findings = analyze_model(extractions(app, variant).model).findings
        assert not [f for f in findings if f.code == "H001"]

    @pytest.mark.parametrize("app", APPS)
    def test_every_access_site_carries_a_pattern(self, extractions, app):
        # Unclassifiable footprints become OpaquePattern — never None,
        # never a silent drop.
        model = extractions(app).model
        sites = [
            site
            for var in model.variables.values()
            for site in var.access_sites
        ]
        assert sites
        assert all(site.pattern is not None for site in sites)


class TestDriftGateSensitivity:
    def test_moved_parallel_region_diverges(self, extractions):
        extraction = extractions("nw")
        registered = build_static_model("nw")
        name = next(iter(registered.regions))
        region = registered.regions[name]
        registered.regions[name] = replace(region, line=region.line + 7)
        diff = diff_models(
            registered, extraction.model, extraction.inexact_sizes
        )
        assert not diff.ok
        assert any("regions" in d for d in diff.differences)

    def test_moved_alloc_site_diverges(self, extractions):
        extraction = extractions("nw")
        registered = build_static_model("nw")
        var = registered.variables["referrence"]
        site = var.alloc_sites[0]
        var.alloc_sites[0] = replace(site, line=site.line + 1)
        diff = diff_models(
            registered, extraction.model, extraction.inexact_sizes
        )
        assert not diff.ok
        assert any("alloc sites" in d for d in diff.differences)

    def test_changed_team_width_diverges(self, extractions):
        extraction = extractions("streamcluster")
        registered = build_static_model("streamcluster")
        name = next(iter(registered.regions))
        region = registered.regions[name]
        registered.regions[name] = replace(
            region, n_threads=region.n_threads * 2
        )
        diff = diff_models(
            registered, extraction.model, extraction.inexact_sizes
        )
        assert not diff.ok


class TestModuleObjectEntry:
    def test_extract_accepts_a_module_object(self):
        # The gate can interpret a kernel module that is not in the
        # registry — what an out-of-tree CI hook would hand it.
        nw = import_module("repro.apps.nw")
        fake = types.ModuleType("kernel_under_test")
        fake.APP_NAME = "nw"
        fake.rank_config = nw.rank_config
        fake.run = nw.run
        extraction = extract_model(fake)
        assert extraction.app == "nw"
        diff = diff_models(
            build_static_model("nw"),
            extraction.model,
            extraction.inexact_sizes,
        )
        assert diff.ok, diff.render()
