"""Boundness triage: parity with the pre-engine implementation + bug fixes.

``derive_from_profile``/``derive_from_machine`` now route through the
formula engine (repro.metrics).  This file pins three things:

* **parity oracle** — verbatim copies of the old hand-rolled arithmetic
  from ``repro/core/derived.py``; the engine must reproduce its numbers
  *byte-identically* on real runs of all five bundled apps, except where
  the per-hop remote-DRAM pricing fix intentionally diverges (asserted
  as an exact delta, not just "different");
* **the 2-hop pricing fix** — the old code charged every remote DRAM
  access ``lat.dram(2)``; on multi-die topologies (Magny-Cours, tiny
  with ``numa_per_socket=2``) same-socket/cross-die accesses are 1 hop;
* **verdict semantics** — every branch of ``BoundnessReport.verdict()``,
  including the degenerate inputs the old code answered misleadingly
  (an empty profile used to read "compute-bound").
"""

from __future__ import annotations

import importlib

import pytest

from repro.core.analyzer import Analyzer
from repro.core.derived import (
    BoundnessReport,
    derive_from_machine,
    derive_from_profile,
)
from repro.core.profiler import DataCentricProfiler
from repro.core.storage import StorageClass
from repro.machine.hierarchy import LVL_LMEM, LVL_RMEM
from repro.machine.presets import tiny_machine
from repro.metrics import (
    MachineSource,
    ProfileSource,
    StaticSource,
    evaluate_boundness,
    report_from_source,
)
from repro import IBSEngine
from tests.conftest import MiniProgram

APPS = ("amg2006", "lulesh", "nw", "streamcluster", "sweep3d")


# ---------------------------------------------------------------------------
# The oracle: the pre-engine arithmetic, copied verbatim (modulo the
# report type) from repro/core/derived.py before the rewrite.
# ---------------------------------------------------------------------------


def _oracle_report(total_latency, compute_cycles, samples, dram, remote, tlb):
    total_cost = total_latency + compute_cycles
    return (
        (total_latency / total_cost) if total_cost else 0.0,
        (dram / samples) if samples else 0.0,
        (remote / dram) if dram else 0.0,
        (tlb / samples) if samples else 0.0,
        samples,
    )


def oracle_from_profile(exp):
    profile = exp.profile
    samples = latency = dram = remote = tlb = 0
    for storage in (StorageClass.HEAP, StorageClass.STATIC,
                    StorageClass.STACK, StorageClass.UNKNOWN):
        cct = profile.get_cct(storage)
        if cct is None:
            continue
        m = cct.root.inclusive()
        samples += m.samples
        latency += m.latency
        dram += m.levels[LVL_LMEM] + m.levels[LVL_RMEM]
        remote += m.levels[LVL_RMEM]
        tlb += m.tlb_misses
    compute = 0
    nonmem_cct = profile.get_cct(StorageClass.NONMEM)
    if nonmem_cct is not None:
        compute = nonmem_cct.root.inclusive().events
    return _oracle_report(latency, compute, samples, dram, remote, tlb)


def oracle_from_machine(machine, elapsed_cycles):
    h = machine.hierarchy
    lat = machine.spec.latency
    counts = h.level_counts
    memory_cycles = (
        counts[0] * lat.l1
        + counts[1] * lat.l2
        + counts[2] * lat.l3
        + counts[3] * lat.local_dram
        + counts[4] * lat.dram(2)          # the bug: all remotes at 2 hops
        + h.contention.total_queue_cycles
    )
    accesses = sum(counts)
    dram = counts[LVL_LMEM] + counts[LVL_RMEM]
    remote = counts[LVL_RMEM]
    tlb = sum(t.misses for t in h.tlb)
    compute = max(0, elapsed_cycles - memory_cycles)
    return _oracle_report(memory_cycles, compute, accesses, dram, remote, tlb)


def oracle_machine_memory_cycles(machine):
    h = machine.hierarchy
    lat = machine.spec.latency
    counts = h.level_counts
    return (
        counts[0] * lat.l1 + counts[1] * lat.l2 + counts[2] * lat.l3
        + counts[3] * lat.local_dram + counts[4] * lat.dram(2)
        + h.contention.total_queue_cycles
    )


def _fields(rep: BoundnessReport):
    return (
        rep.memory_cycle_fraction,
        rep.dram_intensity,
        rep.remote_intensity,
        rep.tlb_intensity,
        rep.samples,
    )


@pytest.fixture(scope="module")
def app_runs():
    """One profiled smoke run per bundled app (module-scoped: ~3 s total)."""
    runs = {}
    for app in APPS:
        module = importlib.import_module(f"repro.apps.{app}")
        runs[app] = module.run(module.rank_config("smoke"))
    return runs


# ---------------------------------------------------------------------------
# Parity with the old implementation on real app runs
# ---------------------------------------------------------------------------


class TestProfileParity:
    """The profile path changed engines, not numbers: byte parity everywhere."""

    @pytest.mark.parametrize("app", APPS)
    def test_byte_identical_to_oracle(self, app_runs, app):
        exp = app_runs[app].experiment
        assert _fields(derive_from_profile(exp)) == oracle_from_profile(exp)


class TestMachineParity:
    """The machine path is byte-identical except the intentional hop fix."""

    @pytest.mark.parametrize("app", ("amg2006", "nw", "streamcluster"))
    def test_single_die_sockets_byte_identical(self, app_runs, app):
        # power7: one NUMA node per socket, so every remote access really
        # is 2 hops and the old fixed pricing was accidentally correct.
        result = app_runs[app]
        machine = result.machines[0]
        assert machine.spec.numa_per_socket == 1
        assert machine.hierarchy.hop_counts[1] == 0
        for elapsed in (result.elapsed_cycles,
                        3 * oracle_machine_memory_cycles(machine)):
            assert _fields(derive_from_machine(machine, elapsed)) == (
                oracle_from_machine(machine, elapsed)
            )

    def test_multi_die_delta_is_exactly_the_hop_overcharge(self, app_runs):
        # lulesh runs on Magny-Cours (2 dies per package): its 1-hop
        # accesses were each overpriced by one hop's latency.
        machine = app_runs["lulesh"].machines[0]
        hop1 = machine.hierarchy.hop_counts[1]
        assert hop1 > 0, "run no longer exercises 1-hop remotes"
        result = evaluate_boundness(
            MachineSource(machine, app_runs["lulesh"].elapsed_cycles)
        )
        old_mem = oracle_machine_memory_cycles(machine)
        assert old_mem - result["mem_cycles"] == hop1 * machine.spec.latency.hop

    def test_multi_die_without_one_hop_traffic_stays_identical(self, app_runs):
        # sweep3d also runs on Magny-Cours but its smoke shard happens to
        # stay on-node: no 1-hop accesses, so the fix changes nothing.
        result = app_runs["sweep3d"]
        machine = result.machines[0]
        if machine.hierarchy.hop_counts[1]:
            pytest.skip("smoke preset started producing 1-hop traffic")
        assert _fields(derive_from_machine(machine, result.elapsed_cycles)) == (
            oracle_from_machine(machine, result.elapsed_cycles)
        )


class TestAdapterParity:
    """Both adapters feed one DAG; its internal accounting must close."""

    @pytest.mark.parametrize("app", APPS)
    def test_hierarchy_sums_close_on_both_sources(self, app_runs, app):
        run = app_runs[app]
        sources = [
            MachineSource(run.machines[0], run.elapsed_cycles),
            ProfileSource(run.experiment),
        ]
        for source in sources:
            result = evaluate_boundness(source)
            assert result["total_cycles"] == (
                result["frontend_bound"] + result["retiring"]
                + result["backend_bound"]
            )
            assert result["backend_bound"] == (
                result["core_bound"] + result["memory_bound"]
            )
            assert result["cache_bound"] == (
                result["l1_bound"] + result["l2_bound"] + result["l3_bound"]
            )
            assert result["dram_bound"] == (
                result["local_dram_bound"] + result["numa_bound"]
                + result["queue_bound"]
            )
            # The memory_bound share of the tree equals the report's
            # memory_cycle_fraction exactly — on either source kind.
            rows = {r.name: r for r in result.tree()}
            assert rows["memory_bound"].share_of_total == (
                result["memory_cycle_fraction"]
            )

    @pytest.mark.parametrize("app", APPS)
    def test_report_fields_come_from_engine_nodes(self, app_runs, app):
        run = app_runs[app]
        for source in (MachineSource(run.machines[0], run.elapsed_cycles),
                       ProfileSource(run.experiment)):
            result = evaluate_boundness(source)
            rep = report_from_source(source)
            assert rep.memory_cycle_fraction == result["memory_cycle_fraction"]
            assert rep.remote_intensity == result["remote_intensity"]
            assert rep.tlb_intensity == result["tlb_intensity"]
            assert (rep.memory_bound, rep.numa_bound) == (
                bool(result["is_memory_bound"]), bool(result["is_numa_bound"])
            )


# ---------------------------------------------------------------------------
# The hop-pricing fix, isolated on an asymmetric tiny topology
# ---------------------------------------------------------------------------


class TestHopPricingRegression:
    def _machine_with_one_hop_remotes(self):
        # 2 sockets x 2 NUMA nodes: node 1 is on thread 0's socket (1 hop),
        # node 2/3 are cross-socket (2 hops).  Prefetch off so every cold
        # line is priced as a true DRAM access.
        machine = tiny_machine(sockets=2, numa_per_socket=2, prefetch=False)
        h = machine.hierarchy
        for i in range(64):
            h.access(0, i * 4096 * 3, home_node=1)   # 1-hop remote
        for i in range(64):
            h.access(0, (1 << 30) + i * 4096 * 3, home_node=2)  # 2-hop remote
        return machine

    def test_observed_hops_priced_individually(self):
        machine = self._machine_with_one_hop_remotes()
        h = machine.hierarchy
        assert h.hop_counts[1] > 0 and h.hop_counts[2] > 0
        lat = machine.spec.latency
        result = evaluate_boundness(MachineSource(machine, 10))
        assert result["remote_dram_cycles"] == (
            h.hop_counts[1] * lat.dram(1) + h.hop_counts[2] * lat.dram(2)
        )

    def test_old_pricing_overcharged_one_hop_accesses(self):
        machine = self._machine_with_one_hop_remotes()
        h = machine.hierarchy
        # Judge against an elapsed clock with compute headroom, where the
        # memory-cycle estimate actually moves the fraction.
        elapsed = 4 * oracle_machine_memory_cycles(machine)
        new = derive_from_machine(machine, elapsed)
        old_mcf = oracle_from_machine(machine, elapsed)[0]
        assert new.memory_cycle_fraction < old_mcf
        # The overcharge is exactly one hop latency per 1-hop access.
        result = evaluate_boundness(MachineSource(machine, elapsed))
        assert (
            oracle_machine_memory_cycles(machine) - result["mem_cycles"]
            == h.hop_counts[1] * machine.spec.latency.hop
        )

    def test_profile_fallback_uses_topology_mean_distance(self):
        # Without observed per-hop counts the engine prices remotes at the
        # preset's mean remote distance — 2.0 only on single-die sockets.
        src = StaticSource(
            {"samples": 10, "l1_samples": 0, "l2_samples": 0, "l3_samples": 0,
             "lmem_samples": 0, "rmem_samples": 10, "tlb_miss_samples": 0},
        )
        result = evaluate_boundness(src)
        lat_local = result["lat_local_dram"]
        lat_hop = result["lat_hop"]
        assert result["remote_dram_cycles"] == int(
            10 * (lat_local + 2.0 * lat_hop)
        )

    def test_magnycours_mean_distance_below_two(self):
        from repro.machine.presets import amd_magnycours_spec, power7_spec

        assert power7_spec().avg_remote_hops == 2.0
        # 8 nodes, 1 one-hop peer, 6 two-hop peers: (1 + 12) / 7.
        assert amd_magnycours_spec().avg_remote_hops == pytest.approx(13 / 7)


# ---------------------------------------------------------------------------
# Verdict branches and degenerate inputs
# ---------------------------------------------------------------------------


def _static_report(**counters) -> BoundnessReport:
    base = {"samples": 0, "l1_samples": 0, "l2_samples": 0, "l3_samples": 0,
            "lmem_samples": 0, "rmem_samples": 0, "tlb_miss_samples": 0}
    base.update(counters)
    return report_from_source(StaticSource(base))


class TestVerdictBranches:
    def test_inconclusive_on_truly_empty_input(self):
        rep = _static_report()
        assert rep.samples == 0 and rep.total_cycles == 0
        assert rep.verdict().startswith("inconclusive")

    def test_compute_bound(self):
        rep = _static_report(samples=100, l1_samples=100,
                             nonmem_event_cycles=100_000)
        assert not rep.memory_bound
        assert rep.verdict().startswith("compute-bound")

    def test_memory_bound(self):
        rep = _static_report(samples=100, l3_samples=60, lmem_samples=40,
                             nonmem_event_cycles=10)
        assert rep.memory_bound and not rep.numa_bound
        assert rep.verdict().startswith("memory-bound")

    def test_numa_bound(self):
        rep = _static_report(samples=100, lmem_samples=40, rmem_samples=60)
        assert rep.numa_bound
        assert rep.verdict().startswith("NUMA-bound")

    def test_tlb_pressure(self):
        rep = _static_report(samples=100, lmem_samples=100,
                             tlb_miss_samples=30)
        assert rep.memory_bound and not rep.numa_bound
        assert rep.tlb_intensity > rep.tlb_pressure
        assert "TLB" in rep.verdict()

    def test_gate_is_inclusive_at_threshold(self):
        # memory_cycle_fraction == 0.25 exactly -> memory-bound (>=).
        rep = BoundnessReport(
            memory_cycle_fraction=0.25, dram_intensity=0.0,
            remote_intensity=0.0, tlb_intensity=0.0, samples=1,
            total_cycles=100,
        )
        assert rep.memory_bound

    def test_per_report_thresholds_respected(self):
        rep = BoundnessReport(
            memory_cycle_fraction=0.3, dram_intensity=0.5,
            remote_intensity=0.5, tlb_intensity=0.0, samples=10,
            total_cycles=100, memory_bound_fraction=0.5,
        )
        # Same numbers, stricter per-architecture gate: not memory-bound.
        assert not rep.memory_bound
        assert rep.verdict().startswith("compute-bound")


class TestDegenerateInputs:
    def test_empty_profile_is_inconclusive(self):
        # The old code called this "compute-bound", a misleading answer
        # to "should I optimize locality?" when nothing was observed.
        mini = MiniProgram()
        profiler = DataCentricProfiler(mini.process).attach()
        exp = Analyzer("empty").add(profiler.finalize()).analyze()
        rep = derive_from_profile(exp)
        assert rep.samples == 0
        assert rep.verdict().startswith("inconclusive")

    def test_idle_machine_with_elapsed_time_is_compute_bound(self):
        # No memory accesses but real elapsed cycles: a genuinely
        # compute-only run, not an empty measurement.
        rep = derive_from_machine(tiny_machine(), 5_000)
        assert rep.samples == 0 and rep.total_cycles == 5_000
        assert rep.verdict().startswith("compute-bound")

    def test_marked_event_only_profile_degenerates_to_memory_character(self):
        # Marked-event sampling records no NONMEM samples: compute is 0,
        # the fraction saturates at 1.0, and the verdict stays a memory
        # verdict (the triage that *configures* marked events already ran).
        src = StaticSource(
            {"samples": 50, "lmem_samples": 50, "l1_samples": 0,
             "l2_samples": 0, "l3_samples": 0, "rmem_samples": 0,
             "tlb_miss_samples": 0, "measured_memory_cycles": 9_000},
            kind="profile", override_keys=("profile",),
        )
        rep = report_from_source(src)
        assert rep.memory_cycle_fraction == 1.0
        assert not rep.verdict().startswith("inconclusive")
        assert rep.memory_bound

    def test_zero_dram_profile_has_no_numa_signal(self):
        # All cache hits: remote_intensity must be 0.0 (not 0/0 noise)
        # and the report must not gate into the NUMA branch.
        mini = MiniProgram()
        profiler = DataCentricProfiler(mini.process).attach()
        mini.process.pmu = IBSEngine(period=4, seed=7)
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("hot", (64,), line=20)
        ip = ctx.ip(10)

        def kern():
            for i in range(2000):
                ctx.load_ip(arr.flat_addr(i % arr.size), ip)
                if i % 64 == 0:
                    yield

        mini.process.run_serial(kern())
        exp = Analyzer("cachey").add(profiler.finalize()).analyze()
        rep = derive_from_profile(exp)
        assert rep.samples > 0
        assert rep.remote_intensity == 0.0
        assert not rep.numa_bound
