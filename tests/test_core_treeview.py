"""CCT tree rendering, hot-path navigation, and guidance branch coverage."""

from __future__ import annotations

import pytest

from repro.core.cct import CCT, KIND_FRAME, KIND_IP
from repro.core.metrics import MetricKind
from repro.core.treeview import hot_path, render_cct
from repro.pmu.sample import Sample


def _sample(latency=10, level=3, tlb=False):
    return Sample("T", 1, 1, 0x10, latency, level, tlb, False, 64)


def _frame(name, site=0):
    return ((KIND_FRAME, name, site), {"label": name})


def _ip(name, line):
    return ((KIND_IP, name, line, 0), {"label": f"{name}:{line}"})


@pytest.fixture
def tree():
    cct = CCT("heap")
    for latency, path in (
        (100, [_frame("main"), _frame("solve"), _ip("solve", 5)]),
        (60, [_frame("main"), _frame("solve"), _ip("solve", 6)]),
        (10, [_frame("main"), _frame("setup"), _ip("setup", 9)]),
        (1, [_frame("main"), _frame("io"), _ip("io", 2)]),
    ):
        cct.add_sample_at(path, _sample(latency=latency))
    return cct


class TestRenderCCT:
    def test_contains_nodes_and_shares(self, tree):
        text = render_cct(tree, MetricKind.LATENCY)
        assert "main" in text
        assert "solve" in text
        assert "total: 171" in text
        assert "93.6%" in text  # solve's 160/171

    def test_children_sorted_hottest_first(self, tree):
        text = render_cct(tree, MetricKind.LATENCY)
        assert text.index("solve") < text.index("setup")

    def test_min_share_prunes_cold_subtrees(self, tree):
        text = render_cct(tree, MetricKind.LATENCY, min_share=0.05)
        assert "io" not in text
        full = render_cct(tree, MetricKind.LATENCY, min_share=0.0)
        assert "io" in full

    def test_max_depth_limits_tree(self, tree):
        shallow = render_cct(tree, MetricKind.LATENCY, max_depth=1)
        assert "main" in shallow
        assert "line 5" not in shallow

    def test_title(self, tree):
        assert render_cct(tree, title="PANE").splitlines()[0] == "PANE"

    def test_empty_tree(self):
        text = render_cct(CCT("static"))
        assert "total: 0" in text


class TestHotPath:
    def test_follows_largest_child(self, tree):
        labels = [n.label() for n in hot_path(tree, MetricKind.LATENCY)]
        assert labels[0] == "main"
        assert labels[1] == "solve"
        assert labels[-1].startswith("solve: line 5")

    def test_empty_tree(self):
        assert hot_path(CCT("x")) == []

    def test_stops_at_zero_metric(self):
        cct = CCT("x")
        cct.insert_path([_frame("main"), _ip("main", 1)])  # no samples
        assert hot_path(cct, MetricKind.LATENCY) == []


class TestGuidanceTLBBranch:
    def test_tlb_hot_variable_gets_layout_advice(self):
        """A variable dominated by TLB-missing local accesses should get
        the transpose/interchange recommendation (the Sweep3D pattern)."""
        from repro.core.analyzer import ExperimentDB
        from repro.core.guidance import advise
        from repro.core.merge import merge_profiles
        from repro.core.profiledb import ProfileDB, ThreadProfile
        from repro.core.storage import StorageClass
        from repro.core.cct import HEAP_MARKER_INFO, HEAP_MARKER_KEY

        profile = ThreadProfile("t")
        path = [
            _frame("main"),
            ((KIND_IP, "main", 2, 0), {"var": "Flux", "alloc_kind": "malloc"}),
            (HEAP_MARKER_KEY, HEAP_MARKER_INFO),
            _ip("sweep", 480),
        ]
        for _ in range(20):
            # local DRAM (level 3), TLB-missing
            profile.cct(StorageClass.HEAP).add_sample_at(
                path, _sample(latency=200, level=3, tlb=True)
            )
        db = ProfileDB("p")
        db.add_thread(profile)
        exp = ExperimentDB(merge_profiles([db]))
        recs = advise(exp, MetricKind.LATENCY, min_share=0.0)
        assert recs
        flux = next(r for r in recs if r.variable == "Flux")
        assert "stride" in flux.problem or "spatial" in flux.problem
        assert "transpose" in flux.action or "interchange" in flux.action
