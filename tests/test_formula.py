"""Unit tests for the derived-metric formula engine (repro.metrics.formula).

The engine's contract is *eager* validation: a broken formula set must
fail at registration (import time for the bundled registry), never
mid-evaluation — so most of this file asserts FormulaError at precisely
the declaring call.
"""

from __future__ import annotations

import pytest

from repro.errors import FormulaError
from repro.metrics.formula import (
    FormulaRegistry,
    Ref,
    requires,
)
from repro.metrics.sources import StaticSource


def _registry() -> FormulaRegistry:
    reg = FormulaRegistry("t")
    reg.counter("a", "count", "input a")
    reg.counter("b", "count", "input b")
    reg.constant("k", 10.0, "cycles", "a cost")
    return reg


class TestRequiresNormalization:
    def test_string_forms(self):
        refs = requires("a", "b:count", Ref("c", "cycles", optional=True))
        assert refs[0] == Ref("a", None)
        assert refs[1] == Ref("b", "count")
        assert refs[2].optional

    def test_bad_entry_rejected(self):
        with pytest.raises(FormulaError, match="bad requires"):
            requires(42)


class TestRegistrationValidation:
    def test_unknown_unit_rejected(self):
        reg = FormulaRegistry("t")
        with pytest.raises(FormulaError, match="unknown unit"):
            reg.counter("a", "furlongs")
        with pytest.raises(FormulaError, match="unknown unit"):
            reg.constant("k", 1.0, "parsecs")
        with pytest.raises(FormulaError, match="unknown unit"):
            reg.node("n", "stones", lambda ev: 0)

    def test_duplicate_name_rejected_across_namespaces(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="already declared as a counter"):
            reg.constant("a", 1.0, "count")
        with pytest.raises(FormulaError, match="already declared as a constant"):
            reg.counter("k", "cycles")
        reg.node("n", "count", lambda ev: 0)
        with pytest.raises(FormulaError, match="already declared as a formula"):
            reg.node("n", "count", lambda ev: 1)

    def test_unknown_reference_rejected(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="unknown reference 'nope'"):
            reg.node("n", "count", lambda ev: ev("nope"), reqs=("nope",))
        # Self-reference is just an unknown reference at registration
        # time: the name is not declared until the node registers.
        with pytest.raises(FormulaError, match="unknown reference 'n'"):
            reg.node("n", "count", lambda ev: ev("n"), reqs=("n",))

    def test_reference_unit_mismatch_rejected(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="declared as 'cycles'.*'count'"):
            reg.node("n", "count", lambda ev: ev("a"), reqs=("a:cycles",))

    def test_constant_override_needs_base(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="unknown constant"):
            reg.constant("missing", 1.0, override="arch")

    def test_constant_override_unit_contradiction(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="contradicts base unit"):
            reg.constant("k", 2.0, unit="count", override="arch")

    def test_node_override_needs_base_and_same_unit(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="unknown formula"):
            reg.node("n", "count", lambda ev: 0, override="arch")
        reg.node("n", "count", lambda ev: 0)
        with pytest.raises(FormulaError, match="contradicts base unit"):
            reg.node("n", "cycles", lambda ev: 0, override="arch")


class TestHierarchyValidation:
    def test_level_without_parent_rejected(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="without a parent"):
            reg.node("n", "count", lambda ev: 0, level=1)

    def test_unknown_parent_rejected(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="parent 'ghost'"):
            reg.node("n", "count", lambda ev: 0, level=1, parent="ghost")

    def test_parent_without_level_rejected(self):
        reg = _registry()
        reg.node("flat", "count", lambda ev: 0)  # no hierarchy slot
        with pytest.raises(FormulaError, match="no hierarchy level"):
            reg.node("n", "count", lambda ev: 0, level=1, parent="flat")

    def test_child_level_must_be_parent_plus_one(self):
        reg = _registry()
        reg.node("root", "count", lambda ev: 0, level=0)
        with pytest.raises(FormulaError, match="exactly one level below"):
            reg.node("n", "count", lambda ev: 0, level=2, parent="root")


class TestCycleDetection:
    def test_cycle_via_override_variant(self):
        reg = _registry()
        reg.node("x", "count", lambda ev: 1.0)
        reg.node("y", "count", lambda ev: ev("x") + 1, reqs=("x",))
        # An override of x depending on y closes the loop x -> y -> x in
        # the union graph: rejected even though the base graph is acyclic.
        with pytest.raises(FormulaError, match="dependency cycle"):
            reg.node(
                "x", "count", lambda ev: ev("y"), reqs=("y",), override="arch"
            )
        # The failed registration rolled back: the registry still
        # evaluates, and an "arch"-keyed source sees the base variant.
        src = StaticSource({"a": 0, "b": 0}, override_keys=("arch",))
        result = reg.evaluate(src)
        assert result["x"] == 1.0
        assert result["y"] == 2.0

    def test_three_node_cycle_names_the_path(self):
        reg = _registry()
        reg.node("n1", "count", lambda ev: 1.0)
        reg.node("n2", "count", lambda ev: ev("n1"), reqs=("n1",))
        reg.node("n3", "count", lambda ev: ev("n2"), reqs=("n2",))
        with pytest.raises(FormulaError) as err:
            reg.node(
                "n1", "count", lambda ev: ev("n3"), reqs=("n3",), override="v"
            )
        assert "->" in str(err.value)
        assert "n1" in str(err.value) and "n3" in str(err.value)


class TestResolverDiscipline:
    def test_undeclared_read_rejected_at_evaluation(self):
        reg = _registry()
        reg.node("n", "count", lambda ev: ev("b"), reqs=("a",))  # reads b!
        with pytest.raises(FormulaError, match="without[\\s\\S]*declaring"):
            reg.evaluate(StaticSource({"a": 1, "b": 2}))

    def test_missing_required_counter_is_an_error(self):
        reg = _registry()
        reg.node("n", "count", lambda ev: ev("a"), reqs=("a",))
        with pytest.raises(FormulaError, match="does not provide"):
            reg.evaluate(StaticSource({"b": 2}))

    def test_optional_counter_defaults(self):
        reg = _registry()
        reg.node(
            "n", "count",
            lambda ev: ev("a") + ev.get("b", 100),
            reqs=("a", Ref("b", optional=True)),
        )
        assert reg.evaluate(StaticSource({"a": 1, "b": 2}))["n"] == 3
        assert reg.evaluate(StaticSource({"a": 1}))["n"] == 101

    def test_has_probes_source(self):
        reg = _registry()
        reg.node(
            "n", "count",
            lambda ev: 1.0 if ev.has("b") else 0.0,
            reqs=(Ref("b", optional=True),),
        )
        assert reg.evaluate(StaticSource({"b": 5}))["n"] == 1.0
        assert reg.evaluate(StaticSource({}))["n"] == 0.0


class TestOverrideResolution:
    def _reg(self) -> FormulaRegistry:
        reg = _registry()
        reg.constant("k", 20.0, override="machine")
        reg.constant("k", 30.0, override="amd")
        reg.node("n", "cycles", lambda ev: ev("a") * ev("k"), reqs=("a", "k"))
        reg.node(
            "n", "cycles", lambda ev: -ev("a") * ev("k"), reqs=("a", "k"),
            override="machine",
        )
        return reg

    def test_most_specific_key_wins(self):
        reg = self._reg()
        # ("amd", "machine"): constant resolves per-arch, node per-kind.
        result = reg.evaluate(
            StaticSource({"a": 2}, override_keys=("amd", "machine"))
        )
        assert result["k"] == 30.0
        assert result["n"] == -60.0

    def test_generic_key_falls_through(self):
        reg = self._reg()
        result = reg.evaluate(StaticSource({"a": 2}, override_keys=("machine",)))
        assert result["k"] == 20.0
        assert result["n"] == -40.0

    def test_no_key_uses_base(self):
        reg = self._reg()
        result = reg.evaluate(
            StaticSource({"a": 2}, override_keys=("unrelated",))
        )
        assert result["k"] == 10.0
        assert result["n"] == 20.0


class TestEvaluation:
    def test_only_restricts_but_pulls_dependencies(self):
        reg = _registry()
        reg.node("low", "count", lambda ev: ev("a"), reqs=("a",))
        reg.node("high", "count", lambda ev: ev("low") * 2, reqs=("low",))
        calls = []
        reg.node("other", "count", lambda ev: calls.append(1) or 0.0)
        result = reg.evaluate(StaticSource({"a": 3}), only=("high",))
        assert result["high"] == 6
        assert result["low"] == 3  # transitive dependency came along
        assert "other" not in result.node_values()
        assert not calls  # unrequested nodes never computed

    def test_only_rejects_non_formula_names(self):
        reg = _registry()
        with pytest.raises(FormulaError, match="not a formula"):
            reg.evaluate(StaticSource({}), only=("a",))

    def test_constants_ride_along_in_result(self):
        reg = _registry()
        result = reg.evaluate(StaticSource({}))
        assert result["k"] == 10.0

    def test_decorator_form_registers_doc(self):
        reg = _registry()

        @reg.formula("n", "count", reqs=("a",))
        def n(ev):
            """twice a"""
            return ev("a") * 2

        assert reg.node_doc("n") == "twice a"
        assert reg.evaluate(StaticSource({"a": 4}))["n"] == 8


class TestTree:
    def _reg(self) -> FormulaRegistry:
        reg = FormulaRegistry("tree")
        reg.counter("work", "cycles")
        reg.node("total", "cycles", lambda ev: 100.0, level=0)
        reg.node("left", "cycles", lambda ev: 60.0, level=1, parent="total")
        reg.node("right", "cycles", lambda ev: 40.0, level=1, parent="total")
        reg.node("leaf", "cycles", lambda ev: 15.0, level=2, parent="left")
        reg.node("flat", "cycles", lambda ev: ev("work"), reqs=("work",))
        return reg

    def test_three_levels_with_shares(self):
        rows = self._reg().evaluate(StaticSource({"work": 1})).tree()
        by_name = {r.name: r for r in rows}
        assert [r.name for r in rows] == ["total", "left", "leaf", "right"]
        assert by_name["total"].share_of_parent is None
        assert by_name["left"].share_of_parent == pytest.approx(0.6)
        assert by_name["leaf"].share_of_parent == pytest.approx(0.25)
        assert by_name["leaf"].share_of_total == pytest.approx(0.15)
        assert by_name["leaf"].level == 2
        assert "flat" not in by_name  # non-hierarchy nodes stay out
