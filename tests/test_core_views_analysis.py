"""Views, analyzer, render, and guidance on a synthetic profiled run."""

from __future__ import annotations

import pytest

from repro.core.analyzer import Analyzer, ExperimentDB
from repro.core.guidance import advise
from repro.core.metrics import MetricKind
from repro.core.profiler import DataCentricProfiler
from repro.core.render import render_bottom_up, render_top_down, render_variable_table
from repro.core.storage import StorageClass
from repro.core.views import build_bottom_up, build_top_down
from repro.errors import ProfileError
from repro.pmu.ibs import IBSEngine
from tests.conftest import MiniProgram


@pytest.fixture(scope="module")
def analyzed():
    """One profiled run touching a hot heap array, a cold heap array,
    a static variable, and stack data."""
    mini = MiniProgram()
    profiler = DataCentricProfiler(mini.process).attach()
    mini.process.pmu = IBSEngine(period=8, seed=11)
    ctx = mini.master_ctx()
    hot = ctx.alloc_array("hot", (16384,), line=20, kind="calloc")
    cold = ctx.alloc_array("cold", (16384,), line=21)
    static = ctx.static_array(mini.bss, (4096,), elem=8)
    stack = ctx.thread.stack_alloc(4096)
    ip = ctx.ip(10)

    def kern():
        for i in range(6000):
            ctx.load_ip(hot.flat_addr((i * 64) % hot.size), ip)
            if i % 3 == 0:
                ctx.load_ip(static.flat_addr((i * 8) % static.size), ctx.ip(10, 1))
            if i % 10 == 0:
                ctx.load_ip(cold.flat_addr((i * 8) % cold.size), ctx.ip(10, 2))
            if i % 20 == 0:
                ctx.load_ip(stack + (i % 4096), ctx.ip(10, 3))
            if i % 32 == 0:
                yield

    mini.process.run_serial(kern())
    exp = Analyzer("mini-run").add(profiler.finalize()).analyze()
    return mini, profiler, exp


class TestTopDownView:
    def test_storage_totals_sum_to_grand_total(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.SAMPLES)
        assert sum(view.storage_totals.values()) == view.grand_total
        assert view.grand_total > 0

    def test_variables_sorted_descending(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.LATENCY)
        values = [v.value for v in view.variables]
        assert values == sorted(values, reverse=True)

    def test_hot_variable_ranks_first(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.LATENCY)
        assert view.variables[0].name == "hot"
        assert view.variables[0].share > 0.3

    def test_variable_shares_within_bounds(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.SAMPLES)
        assert all(0 < v.share <= 1 for v in view.variables)
        assert sum(v.share for v in view.variables) <= 1.0 + 1e-9

    def test_static_variable_present(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.SAMPLES)
        static_vars = [v for v in view.variables if v.storage is StorageClass.STATIC]
        assert [v.name for v in static_vars] == ["g_table"]

    def test_alloc_kind_recorded(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.SAMPLES)
        hot = view.find_variable("hot")
        assert hot.alloc_kind == "calloc"
        cold = view.find_variable("cold")
        assert cold.alloc_kind == "malloc"

    def test_accesses_listed_with_locations(self, analyzed):
        _, _, exp = analyzed
        view = exp.top_down(MetricKind.SAMPLES, accesses_per_var=3)
        hot = view.find_variable("hot")
        assert hot.accesses
        assert all(a.location.startswith("mini.c:") for a in hot.accesses)
        assert all(a.value > 0 for a in hot.accesses)

    def test_find_variable_missing(self, analyzed):
        _, _, exp = analyzed
        assert exp.top_down(MetricKind.SAMPLES).find_variable("nope") is None

    def test_storage_share_helper(self, analyzed):
        _, _, exp = analyzed
        heap = exp.storage_share(StorageClass.HEAP, MetricKind.SAMPLES)
        static = exp.storage_share(StorageClass.STATIC, MetricKind.SAMPLES)
        unknown = exp.storage_share(StorageClass.UNKNOWN, MetricKind.SAMPLES)
        assert heap > static > 0
        assert unknown > 0
        assert heap + static + unknown == pytest.approx(1.0)


class TestBottomUpView:
    def test_sites_aggregate_and_sort(self, analyzed):
        _, _, exp = analyzed
        view = exp.bottom_up(MetricKind.SAMPLES)
        assert view.sites
        values = [s.value for s in view.sites]
        assert values == sorted(values, reverse=True)
        assert all(s.n_contexts >= 1 for s in view.sites)

    def test_site_shares_consistent_with_topdown(self, analyzed):
        _, _, exp = analyzed
        td = exp.top_down(MetricKind.SAMPLES)
        bu = exp.bottom_up(MetricKind.SAMPLES)
        heap_total_td = sum(
            v.value for v in td.variables if v.storage is StorageClass.HEAP
        )
        assert sum(s.value for s in bu.sites) == heap_total_td


class TestAnalyzerQueries:
    def test_top_variables_filter_by_storage(self, analyzed):
        _, _, exp = analyzed
        heap_only = exp.top_variables(MetricKind.SAMPLES, storage=StorageClass.HEAP)
        assert all(v.storage is StorageClass.HEAP for v in heap_only)

    def test_variable_share_sums_same_name(self, analyzed):
        _, _, exp = analyzed
        assert exp.variable_share("hot", MetricKind.SAMPLES) > 0
        assert exp.variable_share("missing", MetricKind.SAMPLES) == 0

    def test_analyze_requires_profiles(self):
        with pytest.raises(ProfileError):
            Analyzer("empty").analyze()

    def test_experimentdb_requires_merged(self, analyzed):
        mini, profiler, _ = analyzed
        db = profiler.finalize()
        if len(db.threads) == 1:
            pytest.skip("single-thread run is trivially merged")
        with pytest.raises(ProfileError):
            ExperimentDB(db)

    def test_merge_stats_attached(self, analyzed):
        _, _, exp = analyzed
        assert exp.merge_stats is not None
        assert exp.merge_stats.node_visits > 0

    def test_size_bytes(self, analyzed):
        _, _, exp = analyzed
        assert exp.size_bytes() > 100


class TestRender:
    def test_top_down_render_contains_variables(self, analyzed):
        _, _, exp = analyzed
        text = render_top_down(exp.top_down(MetricKind.SAMPLES), top_n=5, title="T")
        assert "T" in text
        assert "hot" in text
        assert "heap" in text
        assert "%" in text

    def test_bottom_up_render(self, analyzed):
        _, _, exp = analyzed
        text = render_bottom_up(exp.bottom_up(MetricKind.SAMPLES))
        assert "alloc site" in text
        assert "share" in text

    def test_variable_table_render(self, analyzed):
        _, _, exp = analyzed
        text = render_variable_table(exp.top_down(MetricKind.SAMPLES))
        assert "variable" in text
        assert "hot" in text


class TestGuidance:
    def test_advice_for_top_variables(self, analyzed):
        _, _, exp = analyzed
        recs = advise(exp, MetricKind.LATENCY, top_n=5, min_share=0.01)
        assert recs
        names = {r.variable for r in recs}
        assert "hot" in names
        for r in recs:
            assert r.action
            assert r.problem
            assert 0 < r.share <= 1

    def test_min_share_filters(self, analyzed):
        _, _, exp = analyzed
        assert advise(exp, MetricKind.LATENCY, min_share=1.1) == []

    def test_str_is_informative(self, analyzed):
        _, _, exp = analyzed
        recs = advise(exp, MetricKind.LATENCY, min_share=0.01)
        assert all(r.variable in str(r) for r in recs)
