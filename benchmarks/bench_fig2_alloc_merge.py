"""Figure 2: a loop of 100 heap allocations coalesces to one variable.

The paper's scalability motivation: ``for (i=0;i<100;i++) var[i] =
malloc(size)`` would scatter metrics over 100 records in a tracing tool;
HPCToolkit's allocation-call-path identity merges them online into a
single logical variable, and the merge also spans threads and processes.
"""

from __future__ import annotations

from conftest import report

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    MarkedEventEngine,
    MetricKind,
    LoadModule,
    PM_MRK_DATA_FROM_RMEM,
    SimProcess,
    SourceFile,
    power7_node,
)
from repro.core.cct import HEAP_MARKER_KEY
from repro.core.storage import StorageClass
from repro.pmu.ibs import IBSEngine
from repro.sim.openmp import declare_outlined, omp_chunk
from repro.util.fmt import format_table


N_ALLOCS = 100


def run_alloc_loop(n_threads: int = 32):
    machine = power7_node(smt=1)
    process = SimProcess(machine, name="fig2")
    src = SourceFile("alloc_loop.c", {3: "var[i] = malloc(size);"})
    exe = LoadModule("alloc_loop.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 30)
    region = declare_outlined(exe, main_fn, 10, 10)
    process.load_module(exe)

    profiler = DataCentricProfiler(process).attach()
    process.pmu = IBSEngine(period=24, seed=11)

    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    blocks = [ctx.malloc(8192, line=3, var="var") for _ in range(N_ALLOCS)]

    def worker(wctx: Ctx, tid: int):
        ip = region.ip(12)
        for b in omp_chunk(N_ALLOCS, n_threads, tid):
            wctx.load_stride(blocks[b], 8192 // 64, 64, ip)
            yield

    ctx.parallel(region, worker, n_threads, line=10)
    ctx.leave()
    return profiler, Analyzer("fig2").add(profiler.finalize()).analyze()


def test_fig2_allocations_merge_online(benchmark):
    profiler, exp = benchmark.pedantic(run_alloc_loop, rounds=1, iterations=1)

    heap = exp.profile.cct(StorageClass.HEAP)
    markers = heap.root.find(lambda n: n.key == HEAP_MARKER_KEY)
    view = exp.top_down(MetricKind.SAMPLES)
    heap_vars = [v for v in view.variables if v.storage is StorageClass.HEAP]

    report(
        "Figure 2: 100 allocations from one call site -> one variable",
        format_table(
            ("quantity", "value"),
            [
                ("allocations executed", profiler.stats.allocs_tracked),
                ("live tracked blocks", profiler.heap_map.live_tracked),
                ("logical variables in profile", len(markers)),
                ("heap variables in top-down view", len(heap_vars)),
                ("samples on merged variable", heap_vars[0].samples),
            ],
        ),
    )

    assert profiler.stats.allocs_tracked == N_ALLOCS
    # Online copy-and-merge of allocation paths: one dummy node, one variable.
    assert len(markers) == 1
    assert len(heap_vars) == 1
    assert heap_vars[0].name == "var"
    assert heap_vars[0].samples > 0
