"""A1 (§4.1.3): allocation-tracking overhead and the three mitigations.

Paper: monitoring all of AMG2006's allocations and frees costs +150%
runtime; the size threshold, inlined-assembly context capture, and
trampoline-based incremental unwinding together cut it below 10%.
This bench runs AMG's rank with all 2^3 strategy combinations and
reproduces both endpoints plus the monotone ordering.
"""

from __future__ import annotations

from conftest import report

from repro.apps import amg2006
from repro.core.profiler import ProfilerConfig
from repro.util.fmt import format_table, pct

# One rank is enough: the overhead is a per-process phenomenon.
CFG = dict(n_ranks=1)


def _overhead(base, profiler_config):
    run = amg2006.run(
        amg2006.Config(variant="original", profile=True,
                       profiler_config=profiler_config, **CFG)
    )
    return run.overhead_vs(base), run.profilers[0].stats


def test_ablation_alloc_tracking(benchmark):
    base = amg2006.run(amg2006.Config(variant="original", **CFG))

    def sweep():
        results = {}
        for threshold in (0, 4096):
            for fast in (False, True):
                for tramp in (False, True):
                    cfg = ProfilerConfig(
                        track_threshold=threshold,
                        fast_context=fast,
                        use_trampoline=tramp,
                    )
                    key = (threshold > 0, fast, tramp)
                    results[key] = _overhead(base, cfg)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (threshold, fast, tramp), (overhead, stats) in sorted(results.items()):
        rows.append(
            (
                "on" if threshold else "off",
                "asm" if fast else "getcontext",
                "on" if tramp else "off",
                pct(overhead, 1.0),
                stats.allocs_tracked,
                stats.frames_unwound,
            )
        )
    report(
        "Ablation A1: allocation-tracking overhead (paper: 150% -> <10%)",
        format_table(
            ("threshold", "context", "trampoline", "overhead",
             "allocs tracked", "frames unwound"),
            rows,
        ),
    )

    naive = results[(False, False, False)][0]
    full = results[(True, True, True)][0]
    # Paper endpoints: ~150% naive, <10% with all three strategies.
    assert naive > 0.8
    assert full < 0.10
    # Each strategy helps on its own (overhead strictly drops when enabled).
    assert results[(True, False, False)][0] < naive      # threshold
    assert results[(False, True, False)][0] < naive      # fast context
    assert results[(False, False, True)][0] < naive      # trampoline
    # The threshold is the big lever for an allocation-churn workload.
    assert results[(True, False, False)][0] < 0.35
    # Trampolines slash the frames actually unwound.
    frames_no_tramp = results[(False, False, False)][1].frames_unwound
    frames_tramp = results[(False, False, True)][1].frames_unwound
    assert frames_tramp < frames_no_tramp * 0.5
