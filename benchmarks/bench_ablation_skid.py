"""A4 (§4.1.2): the precise-IP correction vs. interrupt skid.

On out-of-order processors a plain event-based-sampling interrupt lands
several instructions after the faulting one.  HPCToolkit replaces the
unwound leaf with the PMU's precise IP.  We run a two-array kernel where
the B access *immediately follows* the A access on the next source line:
with skid, A's costs smear onto B's line; with the precise IP they don't.
"""

from __future__ import annotations

from conftest import report

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    LoadModule,
    MetricKind,
    ProfilerConfig,
    SimProcess,
    SourceFile,
    amd_magnycours,
)
from repro.pmu.ebs import EBSEngine
from repro.util.fmt import format_table, pct


def run_kernel(use_precise_ip: bool):
    machine = amd_magnycours()
    process = SimProcess(machine, name="skid")
    src = SourceFile("skid.c", {5: "x += A[f(i)];", 6: "y += B[i];"})
    exe = LoadModule("skid.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 20)
    process.load_module(exe)

    profiler = DataCentricProfiler(
        process, ProfilerConfig(use_precise_ip=use_precise_ip)
    ).attach()
    process.pmu = EBSEngine(period=16, skid=3, seed=21)

    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    n = 8192
    a = ctx.alloc_array("A", (n,), line=2)
    b = ctx.alloc_array("B", (n,), line=3)
    ip_a = ctx.ip(5)
    ip_b = ctx.ip(6)

    def kern():
        for i in range(n):
            # A is the expensive random access; B is cheap and sequential,
            # issued right after A — the classic skid victim.
            ctx.load_ip(a.flat_addr((i * 773 + 7) % n), ip_a)
            ctx.load_ip(b.flat_addr(i), ip_b)
            ctx.load_ip(b.flat_addr((i + 1) % n), ip_b)
            ctx.load_ip(b.flat_addr((i + 2) % n), ip_b)
            if i % 16 == 0:
                yield

    process.run_serial(kern())
    ctx.leave()
    exp = Analyzer("skid").add(profiler.finalize()).analyze()

    def line_latency(var_name: str, line_tag: str) -> int:
        var = exp.variable(var_name, MetricKind.LATENCY)
        if var is None:
            return 0
        return sum(acc.value for acc in var.accesses if line_tag in acc.label)

    # EA-based variable attribution is immune to skid; what skid corrupts
    # is the *instruction* attribution: A's expensive samples land on the
    # IP executing at interrupt time (B's line 6).
    return {
        "A@line5": line_latency("A", "line 5"),
        "A@line6": line_latency("A", "line 6"),
    }


def test_skid_correction(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "precise": run_kernel(use_precise_ip=True),
            "skidded": run_kernel(use_precise_ip=False),
        },
        rounds=1, iterations=1,
    )
    precise = results["precise"]
    skidded = results["skidded"]

    def frac_correct(r):
        total = r["A@line5"] + r["A@line6"]
        return r["A@line5"] / total if total else 0.0

    rows = [
        ("precise IP (paper's correction)", r5 := precise["A@line5"],
         precise["A@line6"], pct(frac_correct(precise), 1.0)),
        ("interrupt IP (skid)", skidded["A@line5"],
         skidded["A@line6"], pct(frac_correct(skidded), 1.0)),
    ]
    report(
        "Ablation A4: precise-IP leaf correction vs skid "
        "(latency of array A attributed per source line)",
        format_table(
            ("mode", "A latency @ line 5 (true site)",
             "A latency @ line 6 (skid victim)", "correctly placed"),
            rows,
        ),
    )

    # With the precise IP, all of A's latency lands on its true line.
    assert frac_correct(precise) > 0.99
    # With skid, the bulk of A's latency smears onto the following line.
    assert frac_correct(skidded) < 0.3
