"""Simulator throughput: scalar vs batched memory-access fast path.

Times the simulator's own hot loop (not the simulated workload!) in
simulated-accesses-per-second, before/after the ``access_run`` batching,
and cross-checks that both paths leave bit-identical machine state.

Runs two ways:

- standalone (what CI uses)::

      PYTHONPATH=src python benchmarks/bench_simulator_throughput.py --smoke
      PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
          --stats-out out/throughput.mstats.json

  ``--smoke`` shrinks the workload and skips the speedup assertion (CI
  machines have unpredictable timers); the equivalence checks always run.
  ``--stats-out`` dumps the batched run's ``MachineStats`` as JSON for
  ``hpcview info --machine-stats``.

- under pytest-benchmark with the other reproduction benches
  (``pytest benchmarks/bench_simulator_throughput.py``), asserting the
  acceptance criterion: >= 2x simulated-accesses/sec on a unit-stride
  sweep through the batched path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.machine.presets import amd_magnycours
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.util.fmt import format_table

FULL_ACCESSES = 400_000
SMOKE_ACCESSES = 30_000
MIN_SPEEDUP = 2.0  # acceptance criterion for the unit-stride sweep

# (name, stride in bytes, accesses scale): unit-stride is the headline
# case; line-stride misses every access; page-stride stresses the TLB.
SCENARIOS = (
    ("unit-stride (8B)", 8, 1.0),
    ("line-stride (64B)", 64, 0.5),
    ("page-stride (4KiB)", 4096, 0.1),
)


def _machine():
    return amd_magnycours()


def _state(h) -> tuple:
    return (
        tuple(h.level_counts),
        h.load_count,
        h.store_count,
        h.prefetch_hits,
        tuple((t.hits, t.misses) for t in h.tlb),
        tuple((c.hits, c.misses) for c in h.l1),
        tuple(h.memmgr.dram_accesses),
        h.contention.total_queue_cycles,
    )


def _scalar_sweep(hier, base: int, stride: int, count: int) -> int:
    access = hier.access
    total = 0
    vaddr = base
    for _ in range(count):
        total += access(0, vaddr, 0, False)[0]
        vaddr += stride
    return total


def _batched_sweep(hier, base: int, stride: int, count: int) -> int:
    # Split at page boundaries exactly like Ctx does, so the timing is an
    # honest proxy for the runtime-layer fast path.
    page_bits = hier.page_bits
    total = 0
    cur = base
    remaining = count
    while remaining > 0:
        boundary = ((cur >> page_bits) + 1) << page_bits
        n = min(remaining, (boundary - cur + stride - 1) // stride)
        total += hier.access_run(0, cur, stride, n, 0, False)
        cur += n * stride
        remaining -= n
    return total


def _time(fn, *args) -> tuple[float, int]:
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


def run_throughput(n_accesses: int, check_speedup: bool):
    """Compare scalar vs batched sweeps; returns (rows, batched machine)."""
    rows = []
    speedups = {}
    batched_machine = None
    for name, stride, scale in SCENARIOS:
        count = max(1, int(n_accesses * scale))
        base = 1 << 30

        m_scalar = _machine()
        dt_s, lat_s = _time(_scalar_sweep, m_scalar.hierarchy, base, stride, count)

        m_batched = _machine()
        dt_b, lat_b = _time(_batched_sweep, m_batched.hierarchy, base, stride, count)
        batched_machine = m_batched

        if lat_s != lat_b or _state(m_scalar.hierarchy) != _state(m_batched.hierarchy):
            raise AssertionError(
                f"{name}: batched path diverged from scalar "
                f"(lat {lat_s} vs {lat_b})"
            )

        rate_s = count / dt_s
        rate_b = count / dt_b
        speedups[name] = rate_b / rate_s
        rows.append(
            (
                name,
                f"{count}",
                f"{rate_s / 1e6:.2f}M/s",
                f"{rate_b / 1e6:.2f}M/s",
                f"{rate_b / rate_s:.2f}x",
            )
        )

    if check_speedup:
        unit = speedups["unit-stride (8B)"]
        assert unit >= MIN_SPEEDUP, (
            f"unit-stride batched speedup {unit:.2f}x below the {MIN_SPEEDUP}x "
            "acceptance bar"
        )
    return rows, batched_machine


def run_ctx_equivalence(n: int = 20_000) -> None:
    """End-to-end sanity: Ctx.load_run == Ctx.load_ip loop, full stack."""
    from repro.sim.loader import LoadModule
    from repro.sim.source import SourceFile

    def build():
        proc = SimProcess(_machine())
        exe = LoadModule("bench.exe", is_executable=True)
        src = SourceFile("bench.c", {10: "x = a[i];"})
        main = exe.add_function("main", src, 1, 60)
        proc.load_module(exe)
        ctx = Ctx(proc, proc.master)
        ctx.enter(main)
        return proc, ctx

    pa, ca = build()
    pb, cb = build()
    a = ca.alloc_array("A", (n,), line=20)
    b = cb.alloc_array("A", (n,), line=20)
    ip_a = ca.ip(10)
    for i in range(n):
        ca.load_ip(a.flat_addr(i), ip_a)
    cb.load_run(*b.flat_run(), cb.ip(10))
    assert pa.master.clock == pb.master.clock
    assert _state(pa.machine.hierarchy) == _state(pb.machine.hierarchy)


def _render(rows) -> str:
    return format_table(
        ("sweep", "accesses", "scalar", "batched", "speedup"),
        rows,
        title="simulator throughput (simulated accesses per wall-clock second)",
    )


# ---- pytest entry point ----------------------------------------------------


def test_simulator_throughput(benchmark):
    from conftest import report

    run_ctx_equivalence()
    rows, _ = benchmark.pedantic(
        run_throughput, args=(FULL_ACCESSES, True), rounds=1, iterations=1
    )
    report("simulator throughput: batched access fast path", _render(rows))


# ---- standalone entry point ------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, equivalence checks only (no speedup assertion)",
    )
    parser.add_argument(
        "--stats-out",
        metavar="FILE.json",
        help="write the batched run's MachineStats snapshot as JSON",
    )
    args = parser.parse_args(argv)

    n = SMOKE_ACCESSES if args.smoke else FULL_ACCESSES
    run_ctx_equivalence(5_000 if args.smoke else 20_000)
    rows, machine = run_throughput(n, check_speedup=not args.smoke)
    print(_render(rows))
    print("scalar/batched equivalence: OK")

    if args.stats_out:
        path = Path(args.stats_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(machine.hierarchy.stats().to_dict(), indent=2))
        print(f"machine stats -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
