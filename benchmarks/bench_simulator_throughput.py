"""Simulator throughput: scalar vs batched vs vectorized vs sampled.

Times the simulator's own hot loop (not the simulated workload!) in
simulated-accesses-per-second across the three ``access_run`` engines
plus opt-in run sampling, and cross-checks that every full-fidelity
path leaves bit-identical machine state:

- **scalar**: one ``MemoryHierarchy.access`` call per access (the
  original oracle loop);
- **batched**: ``access_run`` with ``engine="python"`` — the PR 1
  per-page batched loop, the baseline the vectorized criterion is
  measured against;
- **vectorized**: ``access_run`` with ``engine="auto"`` — columnar
  closed-form segments (``repro.machine.vector``), fed one merged
  same-home run per sweep exactly as ``Ctx`` now issues them;
- **sampled**: ``Ctx``-level run sampling (``repro.sim.sampling``) on
  top of the vectorized engine — not bit-identical by design, so it is
  timed and reported (with its extrapolation scale) but parity-checked
  only for the always-simulated tallies.

Runs two ways:

- standalone (what CI uses)::

      PYTHONPATH=src python benchmarks/bench_simulator_throughput.py --smoke
      PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
          --stats-out out/throughput.mstats.json

  ``--smoke`` shrinks the workload and skips the speedup assertions (CI
  machines have unpredictable timers); the equivalence checks always run
  and fail the bench on any engine divergence.  ``--stats-out`` dumps
  the vectorized run's ``MachineStats`` as JSON for
  ``hpcview info --machine-stats``.

- under pytest-benchmark with the other reproduction benches
  (``pytest benchmarks/bench_simulator_throughput.py``), asserting the
  acceptance criteria: >= 2x batched over scalar and >= 10x vectorized
  over batched on the unit-stride sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.machine.presets import Machine, amd_magnycours
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.util.fmt import format_table

FULL_ACCESSES = 400_000
SMOKE_ACCESSES = 30_000
MIN_SPEEDUP = 2.0  # batched over scalar, unit-stride (PR 1 criterion)
MIN_VECTOR_SPEEDUP = 10.0  # vectorized over batched, unit-stride
MIN_SAMPLED_SPEEDUP = 2.0  # sampled over unsampled Ctx, rate 0.25

# (name, stride in bytes, accesses scale): unit-stride is the headline
# case; line-stride misses every access; page-stride stresses the TLB.
SCENARIOS = (
    ("unit-stride (8B)", 8, 1.0),
    ("line-stride (64B)", 64, 0.5),
    ("page-stride (4KiB)", 4096, 0.1),
)


def _machine(engine: str = "auto"):
    base = amd_magnycours()
    if engine == base.spec.sim_engine:
        return base
    return Machine(replace(base.spec, sim_engine=engine))


def _state(h) -> tuple:
    return (
        tuple(h.level_counts),
        h.load_count,
        h.store_count,
        h.prefetch_hits,
        tuple((t.hits, t.misses) for t in h.tlb),
        tuple((c.hits, c.misses) for c in h.l1),
        tuple(h.memmgr.dram_accesses),
        h.contention.total_queue_cycles,
    )


def _scalar_sweep(hier, base: int, stride: int, count: int) -> int:
    access = hier.access
    total = 0
    vaddr = base
    for _ in range(count):
        total += access(0, vaddr, 0, False)[0]
        vaddr += stride
    return total


def _batched_sweep(hier, base: int, stride: int, count: int) -> int:
    # Split at page boundaries exactly like the PR 1 Ctx did, so the
    # timing is an honest proxy for the pre-vectorization fast path.
    page_bits = hier.page_bits
    total = 0
    cur = base
    remaining = count
    while remaining > 0:
        boundary = ((cur >> page_bits) + 1) << page_bits
        n = min(remaining, (boundary - cur + stride - 1) // stride)
        total += hier.access_run(0, cur, stride, n, 0, False)
        cur += n * stride
        remaining -= n
    return total


def _merged_sweep(hier, base: int, stride: int, count: int) -> int:
    # One merged same-home run per sweep: what Ctx issues since the
    # same-home page-chunk merging (all pages are first-touched by the
    # sweeping thread, so the whole sweep shares one home node).
    return hier.access_run(0, base, stride, count, 0, False)


def _time(fn, *args) -> tuple[float, int]:
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


def run_throughput(n_accesses: int, check_speedup: bool):
    """Compare the engines sweep-by-sweep; returns (rows, vector machine)."""
    rows = []
    batched_speedups = {}
    vector_speedups = {}
    vector_machine = None
    for name, stride, scale in SCENARIOS:
        count = max(1, int(n_accesses * scale))
        base = 1 << 30

        m_scalar = _machine("python")
        dt_s, lat_s = _time(_scalar_sweep, m_scalar.hierarchy, base, stride, count)

        m_batched = _machine("python")
        dt_b, lat_b = _time(_batched_sweep, m_batched.hierarchy, base, stride, count)

        m_vector = _machine("auto")
        dt_v, lat_v = _time(_merged_sweep, m_vector.hierarchy, base, stride, count)
        vector_machine = m_vector

        state_s = _state(m_scalar.hierarchy)
        if lat_s != lat_b or state_s != _state(m_batched.hierarchy):
            raise AssertionError(
                f"{name}: batched path diverged from scalar "
                f"(lat {lat_s} vs {lat_b})"
            )
        if lat_s != lat_v or state_s != _state(m_vector.hierarchy):
            raise AssertionError(
                f"{name}: vectorized path diverged from scalar "
                f"(lat {lat_s} vs {lat_v})"
            )

        rate_s = count / dt_s
        rate_b = count / dt_b
        rate_v = count / dt_v
        batched_speedups[name] = rate_b / rate_s
        vector_speedups[name] = rate_v / rate_b
        rows.append(
            (
                name,
                f"{count}",
                f"{rate_s / 1e6:.2f}M/s",
                f"{rate_b / 1e6:.2f}M/s",
                f"{rate_v / 1e6:.2f}M/s",
                f"{rate_b / rate_s:.2f}x",
                f"{rate_v / rate_b:.2f}x",
            )
        )

    if check_speedup:
        unit = "unit-stride (8B)"
        assert batched_speedups[unit] >= MIN_SPEEDUP, (
            f"unit-stride batched speedup {batched_speedups[unit]:.2f}x below "
            f"the {MIN_SPEEDUP}x acceptance bar"
        )
        assert vector_speedups[unit] >= MIN_VECTOR_SPEEDUP, (
            f"unit-stride vectorized speedup {vector_speedups[unit]:.2f}x over "
            f"batched below the {MIN_VECTOR_SPEEDUP}x acceptance bar"
        )
    return rows, vector_machine


def _build_ctx(engine: str = "auto"):
    from repro.sim.loader import LoadModule
    from repro.sim.source import SourceFile

    proc = SimProcess(_machine(engine))
    exe = LoadModule("bench.exe", is_executable=True)
    src = SourceFile("bench.c", {10: "x = a[i];"})
    main = exe.add_function("main", src, 1, 60)
    proc.load_module(exe)
    ctx = Ctx(proc, proc.master)
    ctx.enter(main)
    return proc, ctx


def _ctx_run_storm(ctx, arr, n_runs: int, run_len: int) -> None:
    ip = ctx.ip(10)
    for i in range(n_runs):
        start = (i * 17) % max(1, arr.shape[0] - run_len)
        base, count, stride = arr.flat_run(start, run_len)
        ctx.load_run(base, count, stride, ip)


def run_sampled(n_accesses: int, check_speedup: bool, rate: float = 0.25):
    """Time a Ctx-level run storm unsampled vs sampled; returns a row."""
    from repro.sim.sampling import sampling

    run_len = 1 << 10
    n_runs = max(1, n_accesses // run_len)

    proc_full, ctx_full = _build_ctx("auto")
    arr_full = ctx_full.alloc_array("A", (n_runs * 32 + run_len,), line=20)
    dt_full, _ = _time(_ctx_run_storm, ctx_full, arr_full, n_runs, run_len)

    with sampling(rate=rate, min_run=64, seed=7):
        proc_samp, ctx_samp = _build_ctx("auto")
    arr_samp = ctx_samp.alloc_array("A", (n_runs * 32 + run_len,), line=20)
    dt_samp, _ = _time(_ctx_run_storm, ctx_samp, arr_samp, n_runs, run_len)

    sampler = proc_samp.sampler
    assert sampler is not None
    assert sampler.issued_accesses == proc_full.master.mem_count
    count = n_runs * run_len
    rate_full = count / dt_full
    rate_samp = count / dt_samp
    speedup = rate_samp / rate_full
    if check_speedup:
        assert speedup >= MIN_SAMPLED_SPEEDUP, (
            f"sampled speedup {speedup:.2f}x below the "
            f"{MIN_SAMPLED_SPEEDUP}x bar at rate {rate}"
        )
    return (
        f"sampled runs (rate {rate})",
        f"{count}",
        f"{rate_full / 1e6:.2f}M/s",
        f"{rate_samp / 1e6:.2f}M/s",
        f"{sampler.scale():.2f}",
        f"{speedup:.2f}x",
    )


def run_ctx_equivalence(n: int = 20_000) -> None:
    """End-to-end sanity: Ctx.load_run == Ctx.load_ip loop on every engine."""
    pa, ca = _build_ctx("python")
    a = ca.alloc_array("A", (n,), line=20)
    ip_a = ca.ip(10)
    for i in range(n):
        ca.load_ip(a.flat_addr(i), ip_a)

    for engine in ("python", "auto", "vector"):
        pb, cb = _build_ctx(engine)
        b = cb.alloc_array("A", (n,), line=20)
        cb.load_run(*b.flat_run(), cb.ip(10))
        assert pa.master.clock == pb.master.clock, engine
        assert _state(pa.machine.hierarchy) == _state(pb.machine.hierarchy), engine


def _render(rows) -> str:
    return format_table(
        ("sweep", "accesses", "scalar", "batched", "vector", "bat/scl", "vec/bat"),
        rows,
        title="simulator throughput (simulated accesses per wall-clock second)",
    )


def _render_sampled(row) -> str:
    return format_table(
        ("workload", "accesses", "full", "sampled", "scale", "speedup"),
        [row],
        title="sampled simulation (Ctx run storm, vectorized engine)",
    )


# ---- pytest entry point ----------------------------------------------------


def test_simulator_throughput(benchmark):
    from conftest import report

    run_ctx_equivalence()
    rows, _ = benchmark.pedantic(
        run_throughput, args=(FULL_ACCESSES, True), rounds=1, iterations=1
    )
    sampled_row = run_sampled(FULL_ACCESSES, check_speedup=True)
    report(
        "simulator throughput: engine fast paths",
        _render(rows) + "\n" + _render_sampled(sampled_row),
    )


# ---- standalone entry point ------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, equivalence checks only (no speedup assertions)",
    )
    parser.add_argument(
        "--stats-out",
        metavar="FILE.json",
        help="write the vectorized run's MachineStats snapshot as JSON",
    )
    args = parser.parse_args(argv)

    n = SMOKE_ACCESSES if args.smoke else FULL_ACCESSES
    run_ctx_equivalence(5_000 if args.smoke else 20_000)
    rows, machine = run_throughput(n, check_speedup=not args.smoke)
    print(_render(rows))
    sampled_row = run_sampled(n, check_speedup=not args.smoke)
    print(_render_sampled(sampled_row))
    print("scalar/batched/vectorized equivalence: OK")

    if args.stats_out:
        path = Path(args.stats_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(machine.hierarchy.stats().to_dict(), indent=2))
        print(f"machine stats -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
