"""Figure 4: AMG2006 top-down data-centric view.

Paper: 94.9% of remote memory accesses are heap data; the block allocated
at hypre_CAlloc line 175 (``S_diag_j``) is the target of 22.2%, with two
access contexts at 19.3% and 2.9%.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_top_down
from repro.core.storage import StorageClass


def test_fig4_amg_topdown(benchmark, amg_runs):
    exp = amg_runs["profiled"].experiment

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.REMOTE, accesses_per_var=3),
        rounds=1, iterations=1,
    )
    report(
        "Figure 4: AMG2006 top-down view (remote memory accesses)",
        render_top_down(view, top_n=5)
        + "\npaper: heap 94.9%, S_diag_j 22.2% (contexts 19.3% / 2.9%)",
    )

    heap_share = view.storage_share(StorageClass.HEAP)
    assert heap_share > 0.85  # paper: 94.9%

    s_diag = view.find_variable("S_diag_j")
    assert s_diag is not None
    assert 0.12 < s_diag.share < 0.40          # paper: 22.2%
    assert s_diag.alloc_kind == "calloc"
    assert any("hypre_CAlloc" in f for f in s_diag.alloc_path)

    # Two access contexts, heavily skewed toward the relax loop.
    assert len(s_diag.accesses) >= 2
    first, second = s_diag.accesses[0], s_diag.accesses[1]
    assert first.value > 3 * second.value       # paper: 19.3% vs 2.9%
    assert "470" in first.label                 # the relax-loop source line
    assert "495" in second.label                # the interpolation loop

    # S_diag_j is the top variable overall.
    assert view.variables[0].name == "S_diag_j"
