"""Figure 11: Needleman-Wunsch's two hot matrices and the libnuma fix.

Paper: 90.9% of remote accesses are heap data; ``referrence`` 61.4%,
``input_itemsets`` 29.5%; the accesses sit on lines 163-165 inside the
``_Z7runTestiPPc.omp_fn.0`` outlined region.  Interleaving both arrays
with libnuma yields a 53% speedup — the paper's biggest win.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_top_down
from repro.core.storage import StorageClass


def test_fig11_nw(benchmark, nw_runs):
    exp = nw_runs["profiled"].experiment
    orig = nw_runs["original"]
    fixed = nw_runs["libnuma"]

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.REMOTE, accesses_per_var=4),
        rounds=1, iterations=1,
    )
    speedup = fixed.speedup_over(orig)
    report(
        "Figure 11: NW remote accesses by variable",
        render_top_down(view, top_n=3)
        + f"\nlibnuma speedup: {speedup:.3f}x (paper: 1.53x)"
        + "\npaper: heap 90.9%; referrence 61.4%, input_itemsets 29.5%",
    )

    assert view.storage_share(StorageClass.HEAP) > 0.8    # paper: 90.9%

    ref = view.find_variable("referrence")
    items = view.find_variable("input_itemsets")
    assert ref is not None and items is not None
    assert {view.variables[0].name, view.variables[1].name} == {
        "referrence", "input_itemsets",
    }
    # referrence clearly leads, both are major (paper 61.4 vs 29.5).
    assert ref.share > items.share
    assert 1.2 < ref.share / items.share < 4.0
    assert ref.share > 0.35
    assert items.share > 0.10

    # The hot accesses are the maximum() operands on lines 163-165 inside
    # the outlined wavefront region.
    hot_lines = {a.label for a in ref.accesses} | {a.label for a in items.accesses}
    assert any("163" in label for label in hot_lines)
    assert any("165" in label for label in hot_lines)

    assert 1.3 < speedup < 1.8                            # paper: 1.53x
