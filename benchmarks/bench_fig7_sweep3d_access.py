"""Figure 7: the hot Flux access in a deep call chain, and the 15% fix.

Paper: a single access to ``Flux`` on line 480, deeply nested in the
sweep's call chain and loops, carries 28.6% of total latency; because
Fortran is column-major and the inner loops stride the wrong way, the
fix is to permute Flux/Src/Face's dimensions — whole-program speedup 15%.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.util.fmt import format_table, pct


def test_fig7_sweep3d_hot_access_and_fix(benchmark, sweep_runs):
    orig = sweep_runs["original"]
    opt = sweep_runs["transposed"]
    exp = sweep_runs["profiled"].experiment

    flux = benchmark.pedantic(
        lambda: exp.variable("Flux", MetricKind.LATENCY), rounds=1, iterations=1
    )

    speedup = opt.speedup_over(orig)
    hot = flux.accesses[0]
    rows = [
        ("hot access", hot.label),
        ("hot access share of total latency", pct(hot.share, 1.0)),
        ("paper share", "28.6%"),
        ("speedup from dimension permutation", f"{speedup:.3f}x"),
        ("paper speedup", "1.15x (15%)"),
    ]
    report("Figure 7: Sweep3D hot Flux access and layout fix",
           format_table(("quantity", "value"), rows))

    # The hottest Flux access is the line-480 load of the paper.
    assert "480" in hot.label
    assert 0.15 < hot.share < 0.5          # paper: 28.6%
    # It is reached through the deep chain MAIN__ -> inner_ -> sweep_.
    # (the access path lives under the sweep_ frames in the CCT; the leaf
    # label proves the attribution is line-precise).
    assert hot.location == "sweep.f:480"

    # Dimension permutation recovers unit stride: ~15% whole-program gain.
    assert 1.08 < speedup < 1.35
