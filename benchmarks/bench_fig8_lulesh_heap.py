"""Figure 8: LULESH heap arrays and the libnuma fix.

Paper: heap data carries 66.8% of latency and 94.2% of remote accesses;
the top seven heap arrays each carry 3.0-9.4% of total latency; all are
allocated and initialized by the master thread, so interleaving them with
libnuma yields a 13% speedup.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_variable_table
from repro.core.storage import StorageClass


def test_fig8_lulesh_heap(benchmark, lulesh_runs):
    exp = lulesh_runs["profiled"].experiment
    orig = lulesh_runs["original"]
    fixed = lulesh_runs["libnuma"]

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.LATENCY), rounds=1, iterations=1
    )
    speedup = fixed.speedup_over(orig)
    report(
        "Figure 8: LULESH heap arrays by latency",
        render_variable_table(view, top_n=9)
        + f"\nlibnuma speedup: {speedup:.3f}x (paper: 1.13x)"
        + "\npaper: heap 66.8% latency / 94.2% remote; top-7 arrays 3.0-9.4% each",
    )

    heap_latency = view.storage_share(StorageClass.HEAP)
    assert heap_latency > 0.5    # paper: 66.8%

    remote_view = exp.top_down(MetricKind.REMOTE)
    assert remote_view.storage_share(StorageClass.HEAP) > 0.7  # paper: 94.2%

    tops = [v for v in view.variables if v.storage is StorageClass.HEAP][:7]
    assert len(tops) == 7
    for var in tops:
        # A broad spread of moderately hot arrays, none dominating.
        assert 0.01 < var.share < 0.20       # paper: 3.0-9.4%
        assert var.name.startswith("m_") or var.name == "nodeElemCornerList"
        # Master-homed pages: DRAM traffic is mostly remote.
        assert var.dram_remote_fraction > 0.4

    assert 1.05 < speedup < 1.30             # paper: 1.13x
