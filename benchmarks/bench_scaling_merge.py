"""A2 (§4.2): post-mortem merge scalability.

Paper claims: (a) profile-merge cost grows linearly with the number of
threads/processes, and (b) the MPI reduction tree parallelizes the merge.
We synthesize per-thread profiles with realistic shared structure, merge
2..256 of them, and check linear total work plus a logarithmic-depth
critical path well below the sequential cost.
"""

from __future__ import annotations

from conftest import report

from repro.core.cct import KIND_FRAME, KIND_IP
from repro.core.merge import reduction_tree_merge
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.pmu.sample import Sample
from repro.util.fmt import format_table


def _sample(latency=10):
    return Sample("T", 1, 1, 0x10, latency, 3, False, False, 64)


def _make_profile(thread_id: int) -> ThreadProfile:
    """A per-thread profile with shared hot paths + a few private ones."""
    profile = ThreadProfile(f"t{thread_id}")
    heap = profile.cct(StorageClass.HEAP)
    for fn in ("alloc_a", "alloc_b", "alloc_c"):
        for line in (10, 11, 12):
            heap.add_sample_at(
                [
                    ((KIND_FRAME, "main", 0), None),
                    ((KIND_FRAME, fn, 4), None),
                    ((KIND_IP, fn, line, 0), None),
                ],
                _sample(),
            )
    # A thread-private context (does not coalesce).
    heap.add_sample_at(
        [
            ((KIND_FRAME, "main", 0), None),
            ((KIND_IP, "main", 100 + thread_id % 7, 0), None),
        ],
        _sample(),
    )
    return profile


def _dbs(n: int) -> list[ProfileDB]:
    out = []
    for i in range(n):
        db = ProfileDB(f"p{i}")
        db.add_thread(_make_profile(i))
        out.append(db)
    return out


def test_merge_scaling(benchmark):
    sizes = (2, 8, 32, 128, 256)

    def sweep():
        stats = {}
        for n in sizes:
            _, s = reduction_tree_merge(_dbs(n))
            stats[n] = s
        return stats

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n in sizes:
        s = stats[n]
        rows.append(
            (n, s.rounds, s.node_visits, s.critical_path_visits,
             f"{s.node_visits / n:.1f}")
        )
    report(
        "Ablation A2: reduction-tree merge scaling",
        format_table(
            ("profiles", "rounds", "total node visits",
             "critical path visits", "visits/profile"),
            rows,
        ),
    )

    # Linear total work: visits per profile roughly constant (within 2x).
    per_profile = [stats[n].node_visits / n for n in sizes]
    assert max(per_profile) / min(per_profile) < 2.0

    # Logarithmic rounds.
    assert stats[256].rounds == 8
    assert stats[32].rounds == 5

    # The parallel critical path is far below the sequential total.
    assert stats[256].critical_path_visits < stats[256].node_visits / 8

    # Merged result is identical regardless of count: shared paths coalesce.
    merged, _ = reduction_tree_merge(_dbs(64))
    profile = next(iter(merged.threads.values()))
    heap = profile.cct(StorageClass.HEAP)
    # 1 root + main + 3 alloc fns + 9 shared leaves + <=7 private leaves
    assert heap.node_count() <= 1 + 1 + 3 + 9 + 7
