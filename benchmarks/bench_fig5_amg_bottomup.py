"""Figure 5: AMG2006 bottom-up view — allocation call sites.

Paper: besides ``S_diag_j`` at 22.2%, six more variables allocated
through the hypre allocator each draw >7% of remote accesses; the
bottom-up pane groups costs by allocation call site across call paths.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_bottom_up


def test_fig5_amg_bottomup(benchmark, amg_runs):
    exp = amg_runs["profiled"].experiment

    view = benchmark.pedantic(
        lambda: exp.bottom_up(MetricKind.REMOTE), rounds=1, iterations=1
    )
    report(
        "Figure 5: AMG2006 bottom-up view (allocation call sites)",
        render_bottom_up(view, top_n=10)
        + "\npaper: 7 sites above 7% of remote accesses",
    )

    hypre_sites = [s for s in view.sites if "hypre_CAlloc" in s.label]
    # All seven problem arrays surface as distinct allocator call sites.
    assert len(hypre_sites) == 7
    names = {name for s in hypre_sites for name in s.names}
    assert {"S_diag_j", "A_diag_j", "A_diag_data"} <= names

    significant = [s for s in hypre_sites if s.share > 0.04]
    assert len(significant) >= 5   # paper: 7 sites > 7% (we assert >4%)

    # The bottom-up ranking agrees with the top-down hottest variable.
    assert view.sites[0].names == ["S_diag_j"]
    # Site shares are a partition of the heap total: no double counting.
    assert sum(s.share for s in view.sites) <= 1.0 + 1e-9
