"""Table 2: AMG2006 phase times under numactl vs. libnuma.

Paper (seconds):           init  setup  solver  whole
    original                 26    420     105    551
    numactl (interleave all) 52    426      87    565
    libnuma (surgical)       28    421      80    529

Asserted shape: numactl roughly doubles init and speeds the solver;
libnuma keeps init cheap, beats numactl's solver, and is the only
variant faster end-to-end; setup is policy-insensitive.
"""

from __future__ import annotations

from conftest import report

from repro.util.fmt import format_table


def test_table2_amg_policies(benchmark, amg_runs):
    def summarize():
        out = {}
        for variant in ("original", "numactl", "libnuma"):
            r = amg_runs[variant]
            ph = r.phase_seconds
            out[variant] = (
                ph["init"],
                ph["setup"],
                ph["solve"],
                r.elapsed_seconds,
            )
        return out

    times = benchmark.pedantic(summarize, rounds=1, iterations=1)

    rows = []
    for variant, (init, setup, solve, total) in times.items():
        rows.append(
            (variant,
             f"{init * 1e3:.3f}", f"{setup * 1e3:.3f}",
             f"{solve * 1e3:.3f}", f"{total * 1e3:.3f}")
        )
    rows.append(("paper (s)", "26/52/28", "420/426/421", "105/87/80", "551/565/529"))
    report(
        "Table 2: AMG2006 phases under NUMA policies (ms simulated)",
        format_table(("variant", "init", "setup", "solver", "whole"), rows),
    )

    init_o, setup_o, solve_o, total_o = times["original"]
    init_n, setup_n, solve_n, total_n = times["numactl"]
    init_l, setup_l, solve_l, total_l = times["libnuma"]

    # numactl: interleaved allocation dilates init ~2x (paper 26 -> 52)...
    assert 1.5 < init_n / init_o < 2.6
    # ...but speeds up the solver (105 -> 87, ~1.2x).
    assert 1.05 < solve_o / solve_n < 1.8
    # libnuma: init stays near the original (26 -> 28)...
    assert init_l < init_o * 1.25
    # ...the solver beats numactl (87 -> 80)...
    assert solve_l < solve_n
    # ...and setup barely moves under any policy (420/426/421).
    assert max(setup_o, setup_n, setup_l) / min(setup_o, setup_n, setup_l) < 1.05
    # End to end: numactl's init cost offsets its solver gain (551 -> 565);
    # only libnuma wins overall (551 -> 529).
    assert total_n > total_o
    assert total_l < total_o
