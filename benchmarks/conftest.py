"""Shared fixtures for the reproduction benchmarks.

Expensive app runs are session-scoped so that every table/figure bench
reuses them; each bench then times (via pytest-benchmark) the part of the
pipeline it is about, asserts the paper's qualitative shape, and appends
its reproduction table to ``benchmarks/out/report.md``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.apps import amg2006, lulesh, nw, streamcluster, sweep3d

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(section: str, text: str) -> None:
    """Print a reproduction table and append it to the session report."""
    OUT_DIR.mkdir(exist_ok=True)
    block = f"\n## {section}\n\n```\n{text}\n```\n"
    print(block)
    with open(OUT_DIR / "report.md", "a", encoding="utf-8") as fh:
        fh.write(block)


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "report.md").write_text(
        "# Reproduction report — data-centric profiler (SC'13)\n"
    )
    yield


# ---- session-cached app runs (paper-scale configs) -------------------------


@pytest.fixture(scope="session")
def sc_runs():
    orig = streamcluster.run(streamcluster.Config(variant="original"))
    opt = streamcluster.run(streamcluster.Config(variant="parallel-init"))
    prof = streamcluster.run(
        streamcluster.Config(variant="original", profile=True, pmu_period=24)
    )
    return {"original": orig, "parallel-init": opt, "profiled": prof}


@pytest.fixture(scope="session")
def nw_runs():
    orig = nw.run(nw.Config(variant="original"))
    opt = nw.run(nw.Config(variant="libnuma"))
    prof = nw.run(nw.Config(variant="original", profile=True, pmu_period=24))
    return {"original": orig, "libnuma": opt, "profiled": prof}


@pytest.fixture(scope="session")
def lulesh_runs():
    runs = {v: lulesh.run(lulesh.Config(variant=v)) for v in lulesh.VARIANTS}
    runs["profiled"] = lulesh.run(lulesh.Config(variant="original", profile=True))
    return runs


@pytest.fixture(scope="session")
def sweep_runs():
    # 8 of the paper's 48 identical ranks: per-rank behaviour (the unit the
    # case study analyzes) is unchanged; Table 1 runs the full 48.
    orig = sweep3d.run(sweep3d.Config(variant="original", n_ranks=8))
    opt = sweep3d.run(sweep3d.Config(variant="transposed", n_ranks=8))
    # Denser sampling than the overhead-calibrated default: the figure
    # benches need well-resolved shares, not minimal perturbation.
    prof = sweep3d.run(sweep3d.Config(variant="original", n_ranks=8, profile=True, pmu_period=256))
    return {"original": orig, "transposed": opt, "profiled": prof}


@pytest.fixture(scope="session")
def amg_runs():
    runs = {v: amg2006.run(amg2006.Config(variant=v)) for v in amg2006.VARIANTS}
    runs["profiled"] = amg2006.run(
        amg2006.Config(variant="original", profile=True)
    )
    return runs
