"""Figure 1: data-centric decomposition of one source line's latency.

The motivating example: ``A[i] = B[i] * C[f(i)]`` on one line.  A
code-centric profiler reports the line's aggregate latency; data-centric
profiling splits it per variable and reveals that the indirectly indexed
``C`` is the locality problem (the paper's inset shows C carrying the
bulk of the line's latency).
"""

from __future__ import annotations

from conftest import report

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    IBSEngine,
    LoadModule,
    MetricKind,
    SimProcess,
    SourceFile,
    amd_magnycours,
)
from repro.util.fmt import format_table, pct


def run_motivating_kernel():
    machine = amd_magnycours()
    process = SimProcess(machine, name="fig1")
    src = SourceFile("kernel.c", {4: "A[i] = B[i] * C[f(i)];"})
    exe = LoadModule("kernel.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 20)
    process.load_module(exe)

    profiler = DataCentricProfiler(process).attach()
    process.pmu = IBSEngine(period=16, seed=7)

    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    n = 16384
    a = ctx.alloc_array("A", (n,), line=1)
    b = ctx.alloc_array("B", (n,), line=2)
    c = ctx.alloc_array("C", (n,), line=3)
    ip_a = ctx.ip(4, 0)
    ip_b = ctx.ip(4, 1)
    ip_c = ctx.ip(4, 2)

    def kern():
        for i in range(n):
            ctx.load_ip(b.flat_addr(i), ip_b)                      # B[i]: unit stride
            ctx.load_ip(c.flat_addr((i * 769 + 13) % n), ip_c)     # C[f(i)]: indirect
            ctx.store_ip(a.flat_addr(i), ip_a)                     # A[i]: unit stride
            ctx.compute(4)
            if i % 16 == 0:
                yield

    process.run_serial(kern())
    ctx.leave()
    return Analyzer("fig1").add(profiler.finalize()).analyze()


def test_fig1_latency_decomposition(benchmark):
    exp = benchmark.pedantic(run_motivating_kernel, rounds=1, iterations=1)
    view = exp.top_down(MetricKind.LATENCY)

    shares = {v.name: v.share for v in view.variables}
    total = view.grand_total
    rows = [
        (name, shares.get(name, 0.0) * total, pct(shares.get(name, 0.0), 1.0))
        for name in ("C", "B", "A")
    ]
    report(
        "Figure 1: per-variable latency decomposition of `A[i] = B[i] * C[f(i)]`",
        format_table(("variable", "latency (cycles, sampled)", "share"), rows),
    )

    # Every variable is visible, attributed at the *same source line*...
    for var in view.variables:
        assert any("kernel.c:4" in a.location for a in var.accesses)
    # ...and the indirect C dominates the line's latency.
    assert shares["C"] > 0.5
    assert shares["C"] > shares["B"] + shares["A"]
    assert shares["B"] > 0
    assert shares["A"] > 0
