"""Figure 10: Streamcluster's ``block`` and the parallel-init fix.

Paper: 98.2% of remote accesses are heap data; ``block`` draws 92.6%,
split 55.5%/37% over the two OpenMP contexts that reach ``dist`` (line
175); ``point.p`` draws 5.5%.  Parallel first-touch initialization of
``block`` and ``point.p`` speeds the program up by 28%.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_top_down
from repro.core.storage import StorageClass


def test_fig10_streamcluster(benchmark, sc_runs):
    exp = sc_runs["profiled"].experiment
    orig = sc_runs["original"]
    fixed = sc_runs["parallel-init"]

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.REMOTE, accesses_per_var=3),
        rounds=1, iterations=1,
    )
    speedup = fixed.speedup_over(orig)
    report(
        "Figure 10: Streamcluster remote accesses by variable",
        render_top_down(view, top_n=3)
        + f"\nparallel-init speedup: {speedup:.3f}x (paper: 1.28x)"
        + "\npaper: heap 98.2%; block 92.6% (contexts 55.5%/37%); point.p 5.5%",
    )

    assert view.storage_share(StorageClass.HEAP) > 0.85   # paper: 98.2%

    block = view.find_variable("block")
    assert block is not None
    assert block.share > 0.75                             # paper: 92.6%
    assert view.variables[0].name == "block"

    # Two access contexts through dist(), both on source line 175.
    assert len(block.accesses) >= 2
    ctx1, ctx2 = block.accesses[0], block.accesses[1]
    assert "175" in ctx1.label and "175" in ctx2.label
    assert ctx1.share > ctx2.share > 0.05                 # paper: 55.5% / 37%

    point_p = view.find_variable("point.p")
    assert point_p is not None
    assert 0.005 < point_p.share < 0.15                   # paper: 5.5%

    assert 1.15 < speedup < 1.45                          # paper: 1.28x
