"""Figure 9: LULESH's static ``f_elem`` and the transpose fix.

Paper: static variables carry 23.6% of total latency, ``f_elem`` alone
17%; it is accessed with an indirect first subscript and computed last
subscript, the middle 0..2 subscript being the inner loop.  Transposing
f_elem so the inner touches share a cache line buys 2.2%.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.util.fmt import format_table, pct


def test_fig9_lulesh_static(benchmark, lulesh_runs):
    exp = lulesh_runs["profiled"].experiment
    orig = lulesh_runs["original"]
    transposed = lulesh_runs["transpose"]
    both = lulesh_runs["both"]

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.LATENCY), rounds=1, iterations=1
    )
    static_share = view.storage_share(StorageClass.STATIC)
    f_elem = view.find_variable("f_elem")
    speedup = transposed.speedup_over(orig)

    report(
        "Figure 9: LULESH static f_elem and transposition",
        format_table(
            ("quantity", "value", "paper"),
            [
                ("static share of latency", pct(static_share, 1.0), "23.6%"),
                ("f_elem share of latency", pct(f_elem.share, 1.0), "17%"),
                ("transpose speedup", f"{speedup:.3f}x", "1.022x"),
                ("both fixes speedup",
                 f"{both.speedup_over(orig):.3f}x", "~1.15x"),
            ],
        ),
    )

    # Statics are a visible minority, dominated by f_elem.
    assert 0.03 < static_share < 0.4          # paper: 23.6%
    assert f_elem is not None
    assert f_elem.storage is StorageClass.STATIC
    assert f_elem.share > 0.5 * static_share  # paper: 17 of 23.6
    statics = [v for v in view.variables if v.storage is StorageClass.STATIC]
    assert statics[0].name == "f_elem"

    # The hot accesses are the irregular stores of source line 802.
    assert any("802" in a.label for a in f_elem.accesses)

    # Transposition helps, but modestly (paper: 2.2%).
    assert 1.0 < speedup < 1.10
    # And it composes with the NUMA fix.
    assert both.elapsed_cycles < transposed.elapsed_cycles
