"""Table 1: measurement configuration and overhead of the benchmarks.

Paper row format: code | cores | monitored events | time | time profiled.
Reported overheads were 2.3-12%; profile sizes 8-33 MB.  We reproduce the
five rows with the same events, assert every overhead lands in a low
single-digit-to-~15% band, and report the (scaled-down) profile sizes.
"""

from __future__ import annotations

from conftest import report

from repro.util.fmt import format_table, human_bytes, pct

PAPER_ROWS = {
    "AMG2006": ("4 MPI x 128 thr", "PM_MRK_DATA_FROM_RMEM", 0.096),
    "Sweep3D": ("48 MPI", "AMD IBS", 0.023),
    "LULESH": ("48 threads", "AMD IBS", 0.12),
    "Streamcluster": ("128 threads", "PM_MRK_DATA_FROM_RMEM", 0.080),
    "NW": ("128 threads", "PM_MRK_DATA_FROM_RMEM", 0.039),
}

MAX_OVERHEAD = 0.16  # every app must stay in the paper's "low overhead" regime


def _row(name, config, event, base, profiled, paper_overhead):
    overhead = profiled.overhead_vs(base)
    size = profiled.profile_size_bytes()
    return (
        name,
        config,
        event,
        f"{base.elapsed_seconds * 1e3:.3f}ms",
        f"{profiled.elapsed_seconds * 1e3:.3f}ms",
        pct(overhead, 1.0),
        pct(paper_overhead, 1.0),
        human_bytes(size),
    ), overhead


def test_table1_overhead(benchmark, sc_runs, nw_runs, lulesh_runs, sweep_runs, amg_runs):
    from repro.apps import sweep3d

    def full_sweep_profiled():
        # The one paper config not covered by the shared fixtures:
        # Sweep3D with all 48 ranks, profiled.
        base = sweep3d.run(sweep3d.Config(variant="original"))
        prof = sweep3d.run(sweep3d.Config(variant="original", profile=True))
        return base, prof

    sweep_base48, sweep_prof48 = benchmark.pedantic(
        full_sweep_profiled, rounds=1, iterations=1
    )

    rows = []
    overheads = {}
    for name, (base, prof) in {
        "AMG2006": (amg_runs["original"], amg_runs["profiled"]),
        "Sweep3D": (sweep_base48, sweep_prof48),
        "LULESH": (lulesh_runs["original"], lulesh_runs["profiled"]),
        "Streamcluster": (sc_runs["original"], sc_runs["profiled"]),
        "NW": (nw_runs["original"], nw_runs["profiled"]),
    }.items():
        config, event, paper = PAPER_ROWS[name]
        row, overhead = _row(name, config, event, base, prof, paper)
        rows.append(row)
        overheads[name] = overhead

    table = format_table(
        ("code", "cores", "monitored events", "time", "time w/ prof",
         "overhead", "paper", "profile size"),
        rows,
        title="Table 1 — measurement configuration and overhead",
    )
    report("Table 1: overhead", table)

    for name, overhead in overheads.items():
        assert 0.0 <= overhead < MAX_OVERHEAD, f"{name}: overhead {overhead:.1%}"
    # The paper's qualitative claim: profiling is cheap enough for
    # production-scale runs on every code, parallel model included.
    assert max(overheads.values()) < MAX_OVERHEAD
