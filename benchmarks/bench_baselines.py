"""Baseline comparisons the paper's arguments rest on (§2.1, §2.2, §6).

B1 — code-centric vs data-centric (Figure 1's motivation): a code-centric
profile of `A[i] = B[i] * C[f(i)]` reports ONE hot source line and cannot
say which operand causes it; the data-centric profile decomposes it.

B2 — compact profiles vs MemProf-style traces (§2.2's scalability
motivation): measurement-data volume of a trace grows linearly with
execution length, while the CCT profile stays ~constant once the set of
contexts has been seen.
"""

from __future__ import annotations

from conftest import report

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    IBSEngine,
    LoadModule,
    MetricKind,
    SimProcess,
    SourceFile,
    amd_magnycours,
)
from repro.core.baselines import CodeCentricProfiler, TracingProfiler
from repro.util.fmt import format_table, human_bytes, pct


def _build(process: SimProcess):
    src = SourceFile("kernel.c", {4: "A[i] = B[i] * C[f(i)];"})
    exe = LoadModule("kernel.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 20)
    process.load_module(exe)
    return main_fn


def _run_kernel(process, ctx, main_fn, n, reps=1):
    a = ctx.alloc_array("A", (n,), line=1)
    b = ctx.alloc_array("B", (n,), line=2)
    c = ctx.alloc_array("C", (n,), line=3)
    ip_a, ip_b, ip_c = ctx.ip(4, 0), ctx.ip(4, 1), ctx.ip(4, 2)

    def kern():
        for _ in range(reps):
            for i in range(n):
                ctx.load_ip(b.flat_addr(i), ip_b)
                ctx.load_ip(c.flat_addr((i * 769 + 13) % n), ip_c)
                ctx.store_ip(a.flat_addr(i), ip_a)
                if i % 16 == 0:
                    yield

    process.run_serial(kern())


def test_b1_code_centric_cannot_decompose(benchmark):
    def run():
        machine = amd_magnycours()
        process = SimProcess(machine, name="b1")
        main_fn = _build(process)
        code = CodeCentricProfiler(process).attach()
        data = DataCentricProfiler(process).attach()
        process.pmu = IBSEngine(period=16, seed=7)
        ctx = Ctx(process, process.master)
        ctx.enter(main_fn)
        _run_kernel(process, ctx, main_fn, n=16384)
        ctx.leave()
        return code, Analyzer("b1").add(data.finalize()).analyze()

    code, exp = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = code.line_costs(MetricKind.LATENCY)
    view = exp.top_down(MetricKind.LATENCY)
    rows = [("code-centric", lines[0].location, pct(lines[0].share, 1.0), "(all operands conflated)")]
    for var in view.variables:
        rows.append(("data-centric", f"kernel.c:4 via {var.name}",
                     pct(var.share, 1.0), var.name))
    report(
        "Baseline B1: code-centric vs data-centric on `A[i] = B[i] * C[f(i)]`",
        format_table(("profiler", "attribution", "share", "variable"), rows),
    )

    # The code-centric tool sees one hot line carrying ~all the latency...
    assert lines[0].location == "kernel.c:4"
    assert lines[0].share > 0.95
    # ...with no second line to distinguish operands by (alloc lines are
    # not access sites), while the data-centric view splits the same line
    # into three variables with C dominant.
    assert len([l for l in lines if l.share > 0.02]) == 1
    shares = {v.name: v.share for v in view.variables}
    assert shares["C"] > shares["B"] + shares["A"]
    # Same samples, two tools: totals agree.
    assert code.samples == sum(v.samples for v in view.variables) + (
        code.samples - sum(v.samples for v in view.variables)
    )


def test_b2_trace_grows_profile_does_not(benchmark):
    def sweep():
        out = {}
        for reps in (1, 2, 4, 8):
            machine = amd_magnycours()
            process = SimProcess(machine, name="b2")
            main_fn = _build(process)
            tracer = TracingProfiler(process).attach()
            profiler = DataCentricProfiler(process).attach()
            process.pmu = IBSEngine(period=16, seed=11)
            ctx = Ctx(process, process.master)
            ctx.enter(main_fn)
            _run_kernel(process, ctx, main_fn, n=8192, reps=reps)
            ctx.leave()
            out[reps] = (tracer.trace_bytes(), profiler.finalize().size_bytes(),
                         tracer.total_records)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for reps, (trace, profile, records) in sorted(results.items()):
        rows.append((f"{reps}x", records, human_bytes(trace), human_bytes(profile)))
    report(
        "Baseline B2: MemProf-style trace vs compact CCT profile "
        "(same run, growing execution length)",
        format_table(("work", "trace records", "trace size", "profile size"), rows),
    )

    t1, p1, _ = results[1]
    t8, p8, _ = results[8]
    # Trace volume scales ~linearly with execution length...
    assert t8 > 6 * t1
    # ...while the compact profile grows sublinearly (same contexts, only
    # varint metric widths change) and stays orders of magnitude smaller.
    assert p8 < 1.3 * p1
    assert t8 > 20 * p8
