"""A3 (§4.1.1): sampling-period sweep — overhead vs. attribution accuracy.

The paper controls measurement cost with "a reasonable sampling period".
We sweep the marked-event threshold on Streamcluster and show the trade:
overhead falls as the period grows, while the data-centric answer (block's
share of remote accesses) stays stable until samples get scarce.
"""

from __future__ import annotations

from conftest import report

from repro.apps import streamcluster
from repro.core.metrics import MetricKind
from repro.util.fmt import format_table, pct

# Scaled workload note: each thread sees only a few dozen marked events,
# so the sweep tops out at 32 (a real run's millions of events would use
# periods in the thousands).
PERIODS = (4, 8, 16, 24, 32)


def test_sampling_period_tradeoff(benchmark):
    base = streamcluster.run(streamcluster.Config(variant="original"))

    def sweep():
        out = {}
        for period in PERIODS:
            run = streamcluster.run(
                streamcluster.Config(
                    variant="original", profile=True, pmu_period=period
                )
            )
            exp = run.experiment
            out[period] = (
                run.overhead_vs(base),
                exp.variable_share("block", MetricKind.REMOTE),
                run.profilers[0].stats.mem_samples,
                run.profile_size_bytes(),
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (p, pct(results[p][0], 1.0), pct(results[p][1], 1.0),
         results[p][2], results[p][3])
        for p in PERIODS
    ]
    report(
        "Ablation A3: sampling period vs overhead and accuracy (streamcluster)",
        format_table(
            ("period", "overhead", "block share", "mem samples", "profile bytes"),
            rows,
        ),
    )

    overheads = [results[p][0] for p in PERIODS]
    # Longer periods monotonically (modulo noise) reduce overhead...
    assert overheads[-1] < overheads[0]
    assert overheads[-1] < 0.05
    # ...while attribution stays stable across a wide range of periods.
    dense_share = results[4][1]
    for period in (8, 16, 24):
        assert abs(results[period][1] - dense_share) < 0.15
    # Sample counts shrink roughly with the period.
    assert results[32][2] < results[4][2] / 4
    # And so does the profile (fewer distinct contexts materialize).
    assert results[32][3] <= results[4][3]
