"""Figure 6: Sweep3D heap variables ranked by data-fetch latency.

Paper: 97.4% of total latency is heap data; Flux 39.4%, Src 39.1%,
Face 14.6% (together 93.1%), measured with AMD IBS.
"""

from __future__ import annotations

from conftest import report

from repro.core.metrics import MetricKind
from repro.core.render import render_variable_table
from repro.core.storage import StorageClass


def test_fig6_sweep3d_variables(benchmark, sweep_runs):
    exp = sweep_runs["profiled"].experiment

    view = benchmark.pedantic(
        lambda: exp.top_down(MetricKind.LATENCY), rounds=1, iterations=1
    )
    report(
        "Figure 6: Sweep3D variables by data-fetch latency",
        render_variable_table(view, top_n=5)
        + "\npaper: heap 97.4%; Flux 39.4%, Src 39.1%, Face 14.6%",
    )

    assert view.storage_share(StorageClass.HEAP) > 0.88   # paper: 97.4%

    shares = {v.name: v.share for v in view.variables}
    assert set(list(shares)[:3]) >= {"Flux", "Src"}
    # Flux and Src are comparable and each well above Face.
    assert 0.25 < shares["Flux"] < 0.55
    assert 0.25 < shares["Src"] < 0.55
    assert 0.5 < shares["Flux"] / shares["Src"] < 2.0
    assert 0.04 < shares["Face"] < 0.25
    assert shares["Flux"] + shares["Src"] + shares["Face"] > 0.80  # paper: 93.1%

    # Pure MPI: every access is node-local (the paper's NUMA non-issue).
    for name in ("Flux", "Src", "Face"):
        var = view.find_variable(name)
        assert var.remote_fraction == 0.0
