"""Sequential vs tree-parallel profile merge wall-clock (paper §4.2).

Merges N synthetic rank profiles three ways and times each:

- ``sequential``  — decode every rank blob, then
  :func:`repro.core.merge.merge_profiles`, all in one process (the
  ``hpcview merge`` default path: post-mortem inputs arrive as bytes,
  so the baseline pays the decode like the parallel path does);
- ``tree-model``  — :func:`repro.core.merge.reduction_tree_merge`, the
  in-process schedule model (reports critical-path node visits);
- ``tree-real``   — :func:`repro.parallel.parallel_reduction_merge`, the
  same schedule actually dispatched onto a process pool.  Beyond the
  shared leaf decode it also re-encodes/decodes intermediates at round
  boundaries (profiles move between processes as codec bytes) — the
  price of parallelism that the worker pool must amortize.

Every run cross-checks that all three produce canonically byte-identical
databases, then reports measured wall-clock plus the *modelled*
critical-path speedup (total visits / critical-path visits — what an
unbounded-worker machine could achieve).

Runs two ways:

- standalone (what CI uses)::

      PYTHONPATH=src python benchmarks/bench_parallel_merge.py --smoke
      PYTHONPATH=src python benchmarks/bench_parallel_merge.py --jobs 8

  ``--smoke`` shrinks the rank counts and profile sizes and never asserts
  on timing (the byte-identity checks always run).  The full run asserts
  the acceptance criterion — tree-real beats sequential at >= 32 ranks —
  but only when the machine actually has >= 2 usable CPUs; on a single
  CPU the pool cannot win wall-clock and the assertion is reported as
  skipped (the modelled speedup column is the scalability evidence).

- under pytest-benchmark (``pytest benchmarks/bench_parallel_merge.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core.cct import KIND_FRAME, KIND_IP
from repro.core.merge import merge_profiles, reduction_tree_merge
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.parallel import parallel_reduction_merge
from repro.pmu.sample import Sample
from repro.util.fmt import format_table
from repro.util.rng import derive_rank_seed

FULL_RANK_COUNTS = (8, 32, 128)
SMOKE_RANK_COUNTS = (4, 8)
FULL_PATHS_PER_RANK = 900
SMOKE_PATHS_PER_RANK = 120
SPEEDUP_AT_RANKS = 32  # acceptance: tree-real wins from this size up


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def synthetic_rank_db(rank: int, n_paths: int) -> ProfileDB:
    """A deterministic per-rank profile with SPMD-like cross-rank overlap.

    Ranks of an SPMD job execute the same code, so most calling contexts
    are shared across ranks (they coalesce on merge, and intermediate
    merge products stay near one rank's size); a minority — here 1 in 8
    — are rank-private (divergent control flow, rank-dependent call
    sites) and deep-copy on merge.  The ratio matters: it sets how fast
    reduction-tree intermediates grow, and with them the codec cost each
    round pays to ship profiles between processes.
    """
    state = derive_rank_seed(0xBEEF, rank)
    db = ProfileDB(f"bench.rank{rank:04d}")
    profile = ThreadProfile(f"bench.rank{rank:04d}.t0")
    cct = profile.cct(StorageClass.HEAP)
    for i in range(n_paths):
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        private = i % 8 == 0
        salt = rank if private else 0
        fns = [f"fn{(state >> (8 * d)) % 23}_{salt}" for d in range(4)]
        path = [((KIND_FRAME, fn, 0), None) for fn in fns]
        path.append(((KIND_IP, fns[-1], (state >> 40) % 97, 0), None))
        cct.add_sample_at(
            path,
            Sample("T", 1, 1, 0x10, 10 + (state % 50), 3, False, False, 64),
        )
    db.add_thread(profile)
    return db


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def _sequential_from_bytes(blobs, name):
    dbs = [ProfileDB.from_bytes(blob) for blob in blobs]
    return merge_profiles(dbs, name)


def run_bench(rank_counts, n_paths: int, jobs: int):
    """Returns (table rows, {n_ranks: measured tree-real speedup})."""
    rows = []
    measured = {}
    for n_ranks in rank_counts:
        dbs = [synthetic_rank_db(r, n_paths) for r in range(n_ranks)]
        blobs = [db.to_bytes() for db in dbs]

        dt_seq, seq = _time(_sequential_from_bytes, blobs, "job")
        dt_model, (model_db, stats) = _time(reduction_tree_merge, dbs, "job")
        dt_real, (real_db, real_stats, report) = _time(
            parallel_reduction_merge, blobs, "job", jobs=jobs
        )

        expected = seq.canonical_bytes()
        if model_db.canonical_bytes() != expected or real_db.canonical_bytes() != expected:
            raise AssertionError(f"n={n_ranks}: merge results diverged bytewise")
        if report.partial:
            raise AssertionError(f"n={n_ranks}: clean inputs produced a partial merge")
        if real_stats.critical_path_visits != stats.critical_path_visits:
            raise AssertionError(f"n={n_ranks}: pool schedule != modelled schedule")

        measured[n_ranks] = dt_seq / dt_real
        modelled = stats.node_visits / max(1, stats.critical_path_visits)
        rows.append(
            (
                f"{n_ranks}",
                f"{dt_seq * 1e3:.1f}ms",
                f"{dt_real * 1e3:.1f}ms",
                f"{dt_seq / dt_real:.2f}x",
                f"{modelled:.2f}x",
                f"{stats.rounds}",
            )
        )
    return rows, measured


def _render(rows, jobs: int) -> str:
    return format_table(
        ("ranks", "sequential", "tree-real", "measured", "modelled", "rounds"),
        rows,
        title=(
            "profile merge wall-clock: sequential vs process-pool reduction tree "
            f"({jobs} worker(s); modelled = visits/critical-path, unbounded workers)"
        ),
    )


def check_speedup(measured: dict[int, float], cpus: int) -> str:
    eligible = [n for n in measured if n >= SPEEDUP_AT_RANKS]
    if not eligible:
        return "speedup assertion: skipped (no run at >= " f"{SPEEDUP_AT_RANKS} ranks)"
    if cpus < 2:
        return (
            "speedup assertion: skipped (1 usable CPU — a process pool cannot "
            "beat sequential wall-clock here; see the modelled column)"
        )
    for n in eligible:
        assert measured[n] > 1.0, (
            f"tree-parallel merge did not beat sequential at {n} ranks "
            f"({measured[n]:.2f}x) despite {cpus} CPUs"
        )
    return f"speedup assertion: OK (tree-real > sequential at {eligible} ranks)"


# ---- pytest entry point ----------------------------------------------------


def test_parallel_merge_bench(benchmark):
    from conftest import report

    cpus = _available_cpus()
    jobs = min(8, max(2, cpus))
    rows, measured = benchmark.pedantic(
        run_bench,
        args=(FULL_RANK_COUNTS, FULL_PATHS_PER_RANK, jobs),
        rounds=1,
        iterations=1,
    )
    verdict = check_speedup(measured, cpus)
    report("parallel reduction-tree merge", _render(rows, jobs) + "\n" + verdict)


# ---- standalone entry point ------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, byte-identity checks only (no timing assertion)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="pool workers for tree-real (default: min(8, CPUs))",
    )
    args = parser.parse_args(argv)

    cpus = _available_cpus()
    jobs = args.jobs if args.jobs is not None else min(8, max(2, cpus))
    counts = SMOKE_RANK_COUNTS if args.smoke else FULL_RANK_COUNTS
    n_paths = SMOKE_PATHS_PER_RANK if args.smoke else FULL_PATHS_PER_RANK

    rows, measured = run_bench(counts, n_paths, jobs)
    print(_render(rows, jobs))
    print("sequential/tree-model/tree-real byte-identity: OK")
    if args.smoke:
        print("speedup assertion: skipped (--smoke)")
    else:
        print(check_speedup(measured, cpus))
    return 0


if __name__ == "__main__":
    sys.exit(main())
