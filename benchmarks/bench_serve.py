"""Continuous-profiling service under load: ingest rate, query latency.

Drives the ``repro.serve`` stack end-to-end over real loopback TCP:

1. **Ingest** — concurrent clients ship codec-v2 ``.rpdb`` blobs until
   the store holds ``--profiles`` leaves (10k+ at full scale), in
   batches so the artifact records a rate *trajectory*, not one number.
2. **Compact** — one incremental reduction-tree compaction folds every
   leaf into the per-app rollup; the rollup is then verified
   byte-identical to a sequential ``merge_profiles`` of the same leaves
   (always asserted, even in ``--smoke``).
3. **Query** — cold view materializations (cache invalidated between
   samples) versus memoized repeats; per-request latency is collected
   client-side and summarized as p50/p95/p99.

Acceptance criteria checked at full scale (skipped in ``--smoke``,
where CI timer noise would make them flaky): >= 10k stored profiles
and memoized repeat queries >= 10x faster than cold.

Runs two ways::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --profiles 10000 --out benchmarks/out/bench_serve.json

or under pytest-benchmark with the other reproduction benches
(``pytest benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.merge import merge_profiles
from repro.core.profiledb import ProfileDB
from repro.parallel.registry import run_app_rank
from repro.serve import ProfileService, ProfileStore, ServeClient
from repro.util.fmt import format_table

FULL_PROFILES = 10_000
SMOKE_PROFILES = 200
N_CLIENTS = 8
N_BATCHES = 10
COLD_QUERIES = 20
WARM_QUERIES = 200
MIN_MEMO_SPEEDUP = 10.0  # memoized repeat vs cold materialization
APP = "nw"
BASE_RANKS = 8  # distinct simulated rank profiles, cycled to target count


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def _base_blobs() -> list[bytes]:
    return [
        run_app_rank(APP, rank, BASE_RANKS).to_bytes(canonical=True)
        for rank in range(BASE_RANKS)
    ]


async def _ingest_phase(
    host: str, port: int, blobs: list[bytes], n_profiles: int
) -> list[dict]:
    """Concurrent clients push ``n_profiles`` blobs; per-batch trajectory."""
    trajectory = []
    per_batch = max(1, n_profiles // N_BATCHES)
    shipped = 0
    clients = []
    for _ in range(N_CLIENTS):
        client = ServeClient(host, port)
        await client.connect()
        clients.append(client)
    try:
        while shipped < n_profiles:
            batch = min(per_batch, n_profiles - shipped)

            async def _ship(client: ServeClient, count: int, offset: int) -> None:
                for i in range(count):
                    await client.ingest(APP, blobs[(offset + i) % len(blobs)])

            share = [batch // N_CLIENTS] * N_CLIENTS
            for i in range(batch % N_CLIENTS):
                share[i] += 1
            t0 = time.perf_counter()
            await asyncio.gather(*(
                _ship(client, count, shipped)
                for client, count in zip(clients, share)
                if count
            ))
            dt = time.perf_counter() - t0
            shipped += batch
            trajectory.append({
                "stored_profiles": shipped,
                "batch": batch,
                "seconds": round(dt, 4),
                "blobs_per_sec": round(batch / dt, 1),
            })
    finally:
        for client in clients:
            await client.close()
    return trajectory


async def _query_phase(
    service: ProfileService, host: str, port: int
) -> dict:
    """Cold vs memoized topdown latency over the network path."""
    cold, warm = [], []
    async with ServeClient(host, port) as client:
        for _ in range(COLD_QUERIES):
            service.engine.invalidate(APP)  # force re-materialization
            t0 = time.perf_counter()
            await client.query(APP, "topdown")
            cold.append(time.perf_counter() - t0)
        for _ in range(WARM_QUERIES):
            t0 = time.perf_counter()
            payload = await client.query(APP, "topdown")
            warm.append(time.perf_counter() - t0)
        assert payload["cached"] is True
        # Exercise the other rollup views once each while we are here.
        await client.query(APP, "bottomup")
        await client.query(APP, "variables")
        metricsz = await client.query("", "metricsz")
        assert "repro_serve_query_latency_seconds" in metricsz["text"]
    cold.sort()
    warm.sort()
    return {
        "cold_queries": len(cold),
        "warm_queries": len(warm),
        "cold_mean_ms": round(1e3 * sum(cold) / len(cold), 3),
        "cold_p99_ms": round(1e3 * _quantile(cold, 0.99), 3),
        "warm_p50_ms": round(1e3 * _quantile(warm, 0.50), 4),
        "warm_p95_ms": round(1e3 * _quantile(warm, 0.95), 4),
        "warm_p99_ms": round(1e3 * _quantile(warm, 0.99), 4),
    }


def _memoization_phase(service: ProfileService) -> dict:
    """Cold vs memoized view materialization, at the engine layer.

    The network numbers above include the TCP round-trip, which bounds
    the visible speedup; the memoization criterion is about what the
    cache actually skips — decode + ExperimentDB + formula evaluation —
    so it is measured directly against the query engine.
    """
    engine = service.engine
    cold, warm = [], []
    for _ in range(COLD_QUERIES):
        engine.invalidate(APP)
        t0 = time.perf_counter()
        engine.query(APP, "topdown")
        cold.append(time.perf_counter() - t0)
    for _ in range(WARM_QUERIES):
        t0 = time.perf_counter()
        payload = engine.query(APP, "topdown")
        warm.append(time.perf_counter() - t0)
    assert payload["cached"] is True
    cold_mean = sum(cold) / len(cold)
    warm_mean = sum(warm) / len(warm)
    return {
        "cold_materialize_us": round(1e6 * cold_mean, 1),
        "memoized_us": round(1e6 * warm_mean, 2),
        "speedup": round(cold_mean / max(warm_mean, 1e-9), 1),
    }


def _verify(store: ProfileStore) -> int:
    """Rollup must equal a from-scratch sequential merge, byte for byte."""
    identical, covered = store.verify_rollup(APP)
    assert identical, "rollup diverged from sequential merge_profiles"
    # Belt and braces: decode-compare too, not just the file bytes.
    leaves = [
        ProfileDB.from_bytes(ref.path.read_bytes()) for ref in store.leaves(APP)
    ]
    expected = merge_profiles(leaves, name=APP).canonical_bytes()
    assert store.rollup_bytes(APP) == expected
    return covered


def run_bench(n_profiles: int, check: bool) -> dict:
    blobs = _base_blobs()
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        store = ProfileStore(Path(root) / "store", shards=8, arity=16)
        service = ProfileService(store, queue_size=128)

        async def _run() -> dict:
            host, port = await service.start()
            try:
                t0 = time.perf_counter()
                trajectory = await _ingest_phase(host, port, blobs, n_profiles)
                ingest_s = time.perf_counter() - t0

                t0 = time.perf_counter()
                async with ServeClient(host, port) as client:
                    compacted = await client.compact(APP)
                compact_s = time.perf_counter() - t0

                queries = await _query_phase(service, host, port)
            finally:
                await service.stop()
            queries["memoization"] = _memoization_phase(service)
            return {
                "stored_profiles": n_profiles,
                "ingest": {
                    "seconds": round(ingest_s, 2),
                    "blobs_per_sec": round(n_profiles / ingest_s, 1),
                    "clients": N_CLIENTS,
                    "trajectory": trajectory,
                },
                "compact": {
                    "seconds": round(compact_s, 2),
                    "leaves_folded": compacted["leaves_folded"],
                    "tree_rounds": compacted["rounds"],
                    "rollup_bytes": compacted["rollup_bytes"],
                },
                "query": queries,
            }

        result = asyncio.run(_run())
        result["rollup_byte_identical"] = True  # _verify raises otherwise
        covered = _verify(store)
        assert covered == n_profiles

    if check:
        assert n_profiles >= 10_000, "full scale means 10k+ stored profiles"
        speedup = result["query"]["memoization"]["speedup"]
        assert speedup >= MIN_MEMO_SPEEDUP, (
            f"memoized repeat queries only {speedup:.1f}x faster than cold "
            f"materialization; acceptance bar is {MIN_MEMO_SPEEDUP}x"
        )
    return result


def _render(result: dict) -> str:
    ingest = result["ingest"]
    compact = result["compact"]
    query = result["query"]
    rows = [
        ("stored profiles", f"{result['stored_profiles']}"),
        ("ingest rate", f"{ingest['blobs_per_sec']:.0f} blobs/s "
                        f"({ingest['clients']} clients)"),
        ("compaction", f"{compact['leaves_folded']} leaves in "
                       f"{compact['tree_rounds']} tree rounds, "
                       f"{compact['seconds']}s"),
        ("rollup", f"{compact['rollup_bytes']} bytes, byte-identical "
                   f"to sequential merge"),
        ("query cold mean / p99", f"{query['cold_mean_ms']}ms / "
                                  f"{query['cold_p99_ms']}ms"),
        ("query warm p50/p95/p99", f"{query['warm_p50_ms']} / "
                                   f"{query['warm_p95_ms']} / "
                                   f"{query['warm_p99_ms']} ms"),
        ("memoization (engine)", f"{query['memoization']['cold_materialize_us']}us cold "
                                 f"-> {query['memoization']['memoized_us']}us, "
                                 f"{query['memoization']['speedup']}x"),
    ]
    return format_table(
        ("measure", "value"), rows,
        title="continuous-profiling service under load",
    )


# ---- pytest entry point ----------------------------------------------------


def test_serve_scale(benchmark):
    from conftest import report

    result = benchmark.pedantic(
        run_bench, args=(FULL_PROFILES, True), rounds=1, iterations=1
    )
    report("serve: fleet-scale ingest/compact/query", _render(result))


# ---- standalone entry point ------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small run, no speedup/scale assertions "
                             "(byte-identity is still asserted)")
    parser.add_argument("--profiles", type=int, default=None, metavar="N",
                        help=f"stored profiles to reach "
                             f"(default {FULL_PROFILES}, smoke "
                             f"{SMOKE_PROFILES})")
    parser.add_argument("--out", default=None, metavar="FILE.json",
                        help="write the JSON trajectory artifact here")
    args = parser.parse_args(argv)

    n = args.profiles or (SMOKE_PROFILES if args.smoke else FULL_PROFILES)
    result = run_bench(n, check=not args.smoke)
    print(_render(result))
    print("rollup byte-identity vs sequential merge: OK")

    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2, sort_keys=True))
        print(f"trajectory artifact -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
