"""Legacy setup shim: enables `pip install -e .` on environments without
the `wheel` package (editable installs fall back to setup.py develop)."""
from setuptools import setup

setup()
