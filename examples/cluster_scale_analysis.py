#!/usr/bin/env python3
"""Scalable measurement and analysis of an MPI+OpenMP job (paper §2.2, §4.2).

Profiles AMG2006 across 4 simulated POWER7 nodes x 128 threads, then
demonstrates the scalability machinery the paper emphasizes:

- compact per-rank profiles (CCTs, not traces): sizes stay in kilobytes,
- the reduction-tree merge whose critical path is logarithmic in ranks,
- heap variables coalescing across threads *and* processes because their
  allocation call paths match,
- the three-phase Table 2 experiment with both NUMA fixes.

Run:  python examples/cluster_scale_analysis.py
"""

from repro import MetricKind, render_bottom_up
from repro.apps import amg2006
from repro.util.fmt import human_bytes


def main() -> None:
    print("== profile: 4 ranks x 128 threads, PM_MRK_DATA_FROM_RMEM ==")
    profiled = amg2006.run(amg2006.Config(variant="original", profile=True))

    sizes = [p.finalize().size_bytes() for p in profiled.profilers]
    print(f"per-rank profile sizes: {[human_bytes(s) for s in sizes]}")
    print("(compact CCT profiles — a trace of every allocation/access at")
    print(" this scale would grow with execution time; these don't)")

    exp = profiled.experiment
    stats = exp.merge_stats
    print(f"\nreduction-tree merge: {stats.profiles_in} thread profiles, "
          f"{stats.rounds} rounds")
    print(f"  total merge work   : {stats.node_visits} node visits")
    print(f"  critical path      : {stats.critical_path_visits} node visits "
          f"({stats.critical_path_visits / max(1, stats.node_visits):.0%} of sequential)")
    print(f"  merged database    : {human_bytes(exp.size_bytes())}")

    print("\n== bottom-up view: the hypre allocation sites (Figure 5) ==")
    print(render_bottom_up(exp.bottom_up(MetricKind.REMOTE), top_n=7))

    print("\n== Table 2: phase times under the two fixes ==")
    print(f"{'variant':10s} {'init':>9s} {'setup':>9s} {'solve':>9s} {'total':>9s}")
    for variant in amg2006.VARIANTS:
        r = amg2006.run(amg2006.Config(variant=variant))
        ph = r.phase_seconds
        print(
            f"{variant:10s} {ph['init'] * 1e3:8.3f}ms {ph['setup'] * 1e3:8.3f}ms "
            f"{ph['solve'] * 1e3:8.3f}ms {r.elapsed_seconds * 1e3:8.3f}ms"
        )
    print("paper (s) : 26/52/28 | 420/426/421 | 105/87/80 | 551/565/529")
    print("shape     : numactl doubles init but speeds the solver;")
    print("            surgical libnuma keeps init cheap and wins overall.")


if __name__ == "__main__":
    main()
