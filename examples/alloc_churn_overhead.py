#!/usr/bin/env python3
"""Why allocation tracking needs the §4.1.3 strategies (and Figure 2).

Two demonstrations on an allocation-heavy workload:

1. *Merging*: a loop that mallocs 100 blocks from one call site produces
   ONE logical variable in the profile (Figure 2) — metrics don't scatter.
2. *Overhead*: tracking every allocation with full unwinds is ruinous for
   allocation-churn codes; the size threshold, fast context capture, and
   trampoline unwinding each cut the cost, together reaching the paper's
   <10% regime (the AMG2006 +150% -> <10% story).

Run:  python examples/alloc_churn_overhead.py
"""

from repro.apps import amg2006
from repro.core.profiler import ProfilerConfig

CFG = dict(n_ranks=1)

STRATEGIES = [
    ("track everything, getcontext, full unwinds",
     ProfilerConfig(track_threshold=0, fast_context=False, use_trampoline=False)),
    ("+ size threshold (skip blocks < 4KB)",
     ProfilerConfig(track_threshold=4096, fast_context=False, use_trampoline=False)),
    ("+ inlined-assembly context capture",
     ProfilerConfig(track_threshold=4096, fast_context=True, use_trampoline=False)),
    ("+ trampoline incremental unwinds (all three)",
     ProfilerConfig(track_threshold=4096, fast_context=True, use_trampoline=True)),
]


def main() -> None:
    print("baseline AMG2006 rank (no profiler)...")
    base = amg2006.run(amg2006.Config(variant="original", **CFG))
    print(f"  {base.elapsed_seconds * 1e3:.3f} ms simulated\n")

    print(f"{'strategy':50s} {'overhead':>9s} {'frames unwound':>15s}")
    for label, config in STRATEGIES:
        run = amg2006.run(
            amg2006.Config(variant="original", profile=True,
                           profiler_config=config, **CFG)
        )
        stats = run.profilers[0].stats
        print(f"{label:50s} {run.overhead_vs(base):8.1%} {stats.frames_unwound:15d}")

    print("\npaper: +150% naive -> <10% with all three strategies (§4.1.3)")

    # Figure 2 in one paragraph: the churn allocations above came from one
    # deep call chain — ask the profiler how many logical heap variables
    # the *tracked* big arrays produced despite thousands of allocations.
    run = amg2006.run(amg2006.Config(variant="original", profile=True, **CFG))
    profiler = run.profilers[0]
    print(
        f"\nallocations seen: {profiler.stats.allocs_seen}, "
        f"skipped below threshold: {profiler.stats.allocs_skipped_small}, "
        f"tracked: {profiler.stats.allocs_tracked}"
    )
    from repro.core.metrics import MetricKind
    heap_vars = run.experiment.top_variables(MetricKind.SAMPLES, 100)
    print(f"logical variables in the merged profile: {len(heap_vars)} "
          "(one per allocation context, not per allocation — Figure 2)")


if __name__ == "__main__":
    main()
