#!/usr/bin/env python3
"""Quickstart: profile a tiny kernel and read the data-centric views.

Reproduces the paper's Figure 1 scenario: the single source line
``A[i] = B[i] * C[f(i)]`` looks uniform to a code-centric profiler, but
data-centric attribution decomposes its latency per variable and shows
the indirectly indexed ``C`` is the problem.

Run:  python examples/quickstart.py
"""

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    IBSEngine,
    LoadModule,
    MetricKind,
    SimProcess,
    SourceFile,
    advise,
    amd_magnycours,
    render_top_down,
    render_variable_table,
)


def main() -> None:
    # 1. A simulated 48-core AMD machine (8 NUMA domains) and one process.
    machine = amd_magnycours()
    process = SimProcess(machine, name="quickstart")

    # 2. A "program image": one executable with a main function whose
    #    line 4 holds the three memory accesses of the motivating example.
    src = SourceFile("kernel.c", {4: "A[i] = B[i] * C[f(i)];"})
    exe = LoadModule("kernel.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 20)
    process.load_module(exe)

    # 3. Attach the data-centric profiler and an IBS-style PMU.
    profiler = DataCentricProfiler(process).attach()
    process.pmu = IBSEngine(period=16, seed=7)

    # 4. The kernel: B streams, C gathers, A streams stores.
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    n = 16384
    a = ctx.alloc_array("A", (n,), line=1)
    b = ctx.alloc_array("B", (n,), line=2)
    c = ctx.alloc_array("C", (n,), line=3)
    ip_a, ip_b, ip_c = ctx.ip(4, 0), ctx.ip(4, 1), ctx.ip(4, 2)

    def kernel():
        for i in range(n):
            ctx.load_ip(b.flat_addr(i), ip_b)
            ctx.load_ip(c.flat_addr((i * 769 + 13) % n), ip_c)
            ctx.store_ip(a.flat_addr(i), ip_a)
            ctx.compute(4)
            if i % 16 == 0:
                yield  # let the scheduler interleave (single thread here)

    process.run_serial(kernel())
    ctx.leave()

    # 5. Post-mortem: merge profiles, build the views.
    exp = Analyzer("quickstart").add(profiler.finalize()).analyze()
    view = exp.top_down(MetricKind.LATENCY, accesses_per_var=2)

    print(render_top_down(view, top_n=3,
                          title="top-down data-centric view (latency)"))
    print()
    print(render_variable_table(view, top_n=3))
    print()
    print("optimization guidance:")
    for rec in advise(exp, MetricKind.LATENCY):
        print(" -", rec)

    c_var = view.find_variable("C")
    print(
        f"\nAll three variables share source line kernel.c:4, but C alone "
        f"carries {c_var.share:.0%} of the line's latency — exactly what "
        f"code-centric profiling cannot see (paper, Figure 1)."
    )


if __name__ == "__main__":
    main()
