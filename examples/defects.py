"""Seeded-defect corpus for the sanitizer (``repro.sanitize``).

Each seed is a tiny self-contained app containing *exactly one* known
bug class; the test suite (and the CI smoke) checks that sanitizing a
seed yields exactly one finding of the expected kind, attributed to the
right variable with the full calling contexts.  Seeds that are not the
leak seed free everything they allocate, so enabling leak checking on
them stays quiet.

Run one seed from the CLI::

    PYTHONPATH=src python -m repro.tools.hpcview sanitize --defect oob_read
    PYTHONPATH=src python -m repro.tools.hpcview sanitize --defect race_ww --fail-on race

or list them::

    PYTHONPATH=src python -m repro.tools.hpcview sanitize --list-defects
"""

from __future__ import annotations

from repro import Ctx, LoadModule, SimProcess, SourceFile, tiny_machine

PAGE = 4096


class _Seed:
    """One process with a small two-function program image."""

    def __init__(self) -> None:
        self.machine = tiny_machine()
        self.process = SimProcess(self.machine, name="defect")
        self.source = SourceFile(
            "defect.c",
            {
                10: "buf = malloc(n);",
                20: "... = buf[i];",
                30: "buf[i] = ...;",
                40: "free(buf);",
                110: "shared[k] = ...;",
                120: "... = shared[k];",
            },
        )
        exe = LoadModule("defect.exe", is_executable=True)
        self.main = exe.add_function("main", self.source, 1, 60)
        self.region = exe.add_function("main$$OL$$1", self.source, 100, 40)
        self.process.load_module(exe)
        self.ctx = Ctx(self.process, self.process.master)
        self.ctx.enter(self.main)


def seed_oob_read() -> None:
    """Heap out-of-bounds read: load past the end of ``buf``."""
    s = _Seed()
    ctx = s.ctx
    buf = ctx.malloc(256, line=10, var="buf")
    ctx.touch_range(buf, 256, line=30)
    ctx.load(buf + 256 + 8, line=20)  # 8B into the right redzone
    ctx.free(buf, line=40)


def seed_oob_write() -> None:
    """Heap out-of-bounds write: store before the start of ``buf``."""
    s = _Seed()
    ctx = s.ctx
    buf = ctx.malloc(256, line=10, var="buf")
    ctx.touch_range(buf, 256, line=30)
    ctx.store(buf - 8, line=30)  # 8B into the left redzone
    ctx.free(buf, line=40)


def seed_use_after_free() -> None:
    """Load from ``stale`` after it was freed (quarantine keeps it dead)."""
    s = _Seed()
    ctx = s.ctx
    stale = ctx.malloc(128, line=10, var="stale")
    ctx.touch_range(stale, 128, line=30)
    ctx.free(stale, line=40)
    ctx.load(stale, line=20)


def seed_double_free() -> None:
    """Free ``twice`` two times."""
    s = _Seed()
    ctx = s.ctx
    twice = ctx.malloc(128, line=10, var="twice")
    ctx.touch_range(twice, 128, line=30)
    ctx.free(twice, line=40)
    ctx.free(twice, line=41)


def seed_invalid_free() -> None:
    """Free an interior pointer of ``block`` (then clean up properly)."""
    s = _Seed()
    ctx = s.ctx
    block = ctx.malloc(256, line=10, var="block")
    ctx.touch_range(block, 256, line=30)
    ctx.free(block + 16, line=40)
    ctx.free(block, line=41)


def seed_uninit_read() -> None:
    """Load from ``fresh`` before anything was ever stored to it."""
    s = _Seed()
    ctx = s.ctx
    # Big enough to guarantee a page of its own that no earlier store
    # (of this or a neighbouring block) has committed.
    fresh = ctx.malloc(4 * PAGE, line=10, var="fresh")
    ctx.load(fresh + 2 * PAGE, line=20)
    ctx.touch_range(fresh, 4 * PAGE, line=30)
    ctx.free(fresh, line=40)


def seed_leak() -> None:
    """Allocate ``lost`` and never free it (requires check_leaks)."""
    s = _Seed()
    ctx = s.ctx
    lost = ctx.malloc(512, line=10, var="lost")
    ctx.touch_range(lost, 512, line=30)


def seed_race_ww() -> None:
    """Two threads store the same element of ``shared`` concurrently."""
    s = _Seed()
    ctx = s.ctx
    shared = ctx.malloc(1024, line=10, var="shared")
    ctx.touch_range(shared, 1024, line=30)

    def worker(wctx: Ctx, tid: int):
        ip = wctx.ip(110)
        for _ in range(8):
            wctx.store_ip(shared, ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(shared, line=40)


def seed_race_rw() -> None:
    """One thread stores an element of ``shared`` that another loads."""
    s = _Seed()
    ctx = s.ctx
    shared = ctx.malloc(1024, line=10, var="shared")
    ctx.touch_range(shared, 1024, line=30)

    def worker(wctx: Ctx, tid: int):
        store_ip = wctx.ip(110)
        load_ip = wctx.ip(120)
        for _ in range(8):
            if tid == 0:
                wctx.store_ip(shared + 64, store_ip)
            else:
                wctx.load_ip(shared + 64, load_ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(shared, line=40)


def seed_false_sharing() -> None:
    """Each thread stores its own slot of ``counters`` — same cache line."""
    s = _Seed()
    ctx = s.ctx
    counters = ctx.malloc(64, line=10, var="counters")
    ctx.touch_range(counters, 64, line=30)

    def worker(wctx: Ctx, tid: int):
        ip = wctx.ip(110)
        for _ in range(12):
            wctx.store_ip(counters + tid * 8, ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(counters, line=40)


def seed_clean() -> None:
    """No defect: disjoint per-thread chunks on separate cache lines."""
    s = _Seed()
    ctx = s.ctx
    grid = ctx.malloc(8192, line=10, var="grid")
    ctx.touch_range(grid, 8192, line=30)

    def worker(wctx: Ctx, tid: int):
        store_ip = wctx.ip(110)
        load_ip = wctx.ip(120)
        base = grid + tid * 4096
        for i in range(16):
            wctx.load_ip(base + i * 8, load_ip)
            wctx.store_ip(base + i * 8, store_ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(grid, line=40)


# seed name -> (runner, expected finding kind or None).  The leak seed is
# the only one that needs check_leaks; every other seed frees everything.
SEEDS: dict[str, tuple] = {
    "oob_read": (seed_oob_read, "oob-read"),
    "oob_write": (seed_oob_write, "oob-write"),
    "use_after_free": (seed_use_after_free, "use-after-free"),
    "double_free": (seed_double_free, "double-free"),
    "invalid_free": (seed_invalid_free, "invalid-free"),
    "uninit_read": (seed_uninit_read, "uninit-read"),
    "leak": (seed_leak, "leak"),
    "race_ww": (seed_race_ww, "race-ww"),
    "race_rw": (seed_race_rw, "race-rw"),
    "false_sharing": (seed_false_sharing, "false-sharing"),
    "clean": (seed_clean, None),
}

# The variable name each seed's finding must be attributed to.
EXPECTED_VARIABLE: dict[str, str] = {
    "oob_read": "buf",
    "oob_write": "buf",
    "use_after_free": "stale",
    "double_free": "twice",
    "invalid_free": "block",
    "uninit_read": "fresh",
    "leak": "lost",
    "race_ww": "shared",
    "race_rw": "shared",
    "false_sharing": "counters",
}


def run_seed(name: str):
    """Run one seed under a sanitizing session; returns its SanitizerReport."""
    from repro.sanitize import SanitizerConfig, sanitizing

    runner, _expected = SEEDS[name]
    config = SanitizerConfig(check_leaks=True)
    with sanitizing(config) as session:
        runner()
    return session.report()


def main() -> int:
    failures = 0
    for name, (_runner, expected) in SEEDS.items():
        report = run_seed(name)
        kinds = sorted(f.kind for f in report.findings)
        want = [expected] if expected else []
        ok = kinds == want
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(f"{status:4s} {name:16s} expected={want} got={kinds}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
