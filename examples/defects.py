"""Seeded-defect corpus for the sanitizer and the static analyzer.

Each *dynamic* seed (``SEEDS``) is a tiny self-contained app containing
exactly one known bug class; the test suite (and the CI smoke) checks
that sanitizing a seed yields exactly one finding of the expected kind,
attributed to the right variable with the full calling contexts.  Seeds
that are not the leak seed free everything they allocate, so enabling
leak checking on them stays quiet.

Each *static* seed (``STATIC_SEEDS``) is a :class:`StaticModel` with
exactly one statically visible hazard; ``hpcview staticcheck --defect``
and the golden tests check that the analyzer flags it exactly once with
the right code and variable.  The ``master_first_touch`` seed also has a
dynamic twin (``STATIC_PROFILE_RUNNERS``) whose profile confirms the
H001 prediction under ``--reconcile``.

Run one seed from the CLI::

    PYTHONPATH=src python -m repro.tools.hpcview sanitize --defect oob_read
    PYTHONPATH=src python -m repro.tools.hpcview sanitize --defect race_ww --fail-on race
    PYTHONPATH=src python -m repro.tools.hpcview staticcheck --defect master_first_touch

or list them::

    PYTHONPATH=src python -m repro.tools.hpcview sanitize --list-defects
"""

from __future__ import annotations

from repro import Ctx, LoadModule, SimProcess, SourceFile, tiny_machine
from repro.sim.openmp import omp_chunk, outlined_name
from repro.staticcheck.model import (
    OmpBlockPattern,
    PerThreadSlotPattern,
    StaticModel,
)

PAGE = 4096


class _Seed:
    """One process with a small two-function program image."""

    def __init__(self) -> None:
        self.machine = tiny_machine()
        self.process = SimProcess(self.machine, name="defect")
        self.source = SourceFile(
            "defect.c",
            {
                10: "buf = malloc(n);",
                20: "... = buf[i];",
                30: "buf[i] = ...;",
                40: "free(buf);",
                110: "shared[k] = ...;",
                120: "... = shared[k];",
            },
        )
        exe = LoadModule("defect.exe", is_executable=True)
        self.main = exe.add_function("main", self.source, 1, 60)
        self.region = exe.add_function("main$$OL$$1", self.source, 100, 40)
        self.process.load_module(exe)
        self.ctx = Ctx(self.process, self.process.master)
        self.ctx.enter(self.main)


def seed_oob_read() -> None:
    """Heap out-of-bounds read: load past the end of ``buf``."""
    s = _Seed()
    ctx = s.ctx
    buf = ctx.malloc(256, line=10, var="buf")
    ctx.touch_range(buf, 256, line=30)
    ctx.load(buf + 256 + 8, line=20)  # 8B into the right redzone
    ctx.free(buf, line=40)


def seed_oob_write() -> None:
    """Heap out-of-bounds write: store before the start of ``buf``."""
    s = _Seed()
    ctx = s.ctx
    buf = ctx.malloc(256, line=10, var="buf")
    ctx.touch_range(buf, 256, line=30)
    ctx.store(buf - 8, line=30)  # 8B into the left redzone
    ctx.free(buf, line=40)


def seed_use_after_free() -> None:
    """Load from ``stale`` after it was freed (quarantine keeps it dead)."""
    s = _Seed()
    ctx = s.ctx
    stale = ctx.malloc(128, line=10, var="stale")
    ctx.touch_range(stale, 128, line=30)
    ctx.free(stale, line=40)
    ctx.load(stale, line=20)


def seed_double_free() -> None:
    """Free ``twice`` two times."""
    s = _Seed()
    ctx = s.ctx
    twice = ctx.malloc(128, line=10, var="twice")
    ctx.touch_range(twice, 128, line=30)
    ctx.free(twice, line=40)
    ctx.free(twice, line=41)


def seed_invalid_free() -> None:
    """Free an interior pointer of ``block`` (then clean up properly)."""
    s = _Seed()
    ctx = s.ctx
    block = ctx.malloc(256, line=10, var="block")
    ctx.touch_range(block, 256, line=30)
    ctx.free(block + 16, line=40)
    ctx.free(block, line=41)


def seed_uninit_read() -> None:
    """Load from ``fresh`` before anything was ever stored to it."""
    s = _Seed()
    ctx = s.ctx
    # Big enough to guarantee a page of its own that no earlier store
    # (of this or a neighbouring block) has committed.
    fresh = ctx.malloc(4 * PAGE, line=10, var="fresh")
    ctx.load(fresh + 2 * PAGE, line=20)
    ctx.touch_range(fresh, 4 * PAGE, line=30)
    ctx.free(fresh, line=40)


def seed_leak() -> None:
    """Allocate ``lost`` and never free it (requires check_leaks)."""
    s = _Seed()
    ctx = s.ctx
    lost = ctx.malloc(512, line=10, var="lost")
    ctx.touch_range(lost, 512, line=30)


def seed_race_ww() -> None:
    """Two threads store the same element of ``shared`` concurrently."""
    s = _Seed()
    ctx = s.ctx
    shared = ctx.malloc(1024, line=10, var="shared")
    ctx.touch_range(shared, 1024, line=30)

    def worker(wctx: Ctx, tid: int):
        ip = wctx.ip(110)
        for _ in range(8):
            wctx.store_ip(shared, ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(shared, line=40)


def seed_race_rw() -> None:
    """One thread stores an element of ``shared`` that another loads."""
    s = _Seed()
    ctx = s.ctx
    shared = ctx.malloc(1024, line=10, var="shared")
    ctx.touch_range(shared, 1024, line=30)

    def worker(wctx: Ctx, tid: int):
        store_ip = wctx.ip(110)
        load_ip = wctx.ip(120)
        for _ in range(8):
            if tid == 0:
                wctx.store_ip(shared + 64, store_ip)
            else:
                wctx.load_ip(shared + 64, load_ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(shared, line=40)


def seed_false_sharing() -> None:
    """Each thread stores its own slot of ``counters`` — same cache line."""
    s = _Seed()
    ctx = s.ctx
    counters = ctx.malloc(64, line=10, var="counters")
    ctx.touch_range(counters, 64, line=30)

    def worker(wctx: Ctx, tid: int):
        ip = wctx.ip(110)
        for _ in range(12):
            wctx.store_ip(counters + tid * 8, ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(counters, line=40)


def seed_clean() -> None:
    """No defect: disjoint per-thread chunks on separate cache lines."""
    s = _Seed()
    ctx = s.ctx
    grid = ctx.malloc(8192, line=10, var="grid")
    ctx.touch_range(grid, 8192, line=30)

    def worker(wctx: Ctx, tid: int):
        store_ip = wctx.ip(110)
        load_ip = wctx.ip(120)
        base = grid + tid * 4096
        for i in range(16):
            wctx.load_ip(base + i * 8, load_ip)
            wctx.store_ip(base + i * 8, store_ip)
            yield

    ctx.parallel(s.region, worker, 2, line=50)
    ctx.free(grid, line=40)


# seed name -> (runner, expected finding kind or None).  The leak seed is
# the only one that needs check_leaks; every other seed frees everything.
SEEDS: dict[str, tuple] = {
    "oob_read": (seed_oob_read, "oob-read"),
    "oob_write": (seed_oob_write, "oob-write"),
    "use_after_free": (seed_use_after_free, "use-after-free"),
    "double_free": (seed_double_free, "double-free"),
    "invalid_free": (seed_invalid_free, "invalid-free"),
    "uninit_read": (seed_uninit_read, "uninit-read"),
    "leak": (seed_leak, "leak"),
    "race_ww": (seed_race_ww, "race-ww"),
    "race_rw": (seed_race_rw, "race-rw"),
    "false_sharing": (seed_false_sharing, "false-sharing"),
    "clean": (seed_clean, None),
}

# The variable name each seed's finding must be attributed to.
EXPECTED_VARIABLE: dict[str, str] = {
    "oob_read": "buf",
    "oob_write": "buf",
    "use_after_free": "stale",
    "double_free": "twice",
    "invalid_free": "block",
    "uninit_read": "fresh",
    "leak": "lost",
    "race_ww": "shared",
    "race_rw": "shared",
    "false_sharing": "counters",
}


# ---------------------------------------------------------------------------
# Static-analyzer seeds (repro.staticcheck)
# ---------------------------------------------------------------------------

# The static seeds share one program image: main, one outlined parallel
# region, and an orphan helper no call edge ever reaches (the dead-code
# host for the H004 seed).  tiny_machine has 4 hardware threads on 2
# NUMA nodes (2 per node), so a 4-thread region spans nodes and a
# 2-thread region does not — the knob the seeds use to isolate H001.
_STATIC_REGION = outlined_name("main", 1)
_TABLE_ELEMS = 8192  # 64 KiB of 8B elements


def _static_image(process: SimProcess):
    src = SourceFile(
        "defect.c",
        {
            10: "table = calloc(n, sizeof *table);",
            20: "... = work[i];",
            30: "for (i = 0; i < n; i++) counters[i] = 0;",
            40: "free(table);",
            105: "stream = malloc(CHUNK);",
            110: "sum += table[i];",
            111: "grid[i] = ...;",
            205: "ghost = malloc(GHOST_BYTES);",
        },
    )
    exe = LoadModule("defect.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 60)
    region_fn = exe.add_function(_STATIC_REGION, src, 100, 40)
    exe.add_function("orphan_init", src, 200, 30)
    process.load_module(exe)
    return main_fn, region_fn


def _static_model(name: str, n_threads: int = 4) -> StaticModel:
    machine = tiny_machine()
    process = SimProcess(machine, name=f"defect-{name}")
    _static_image(process)
    model = StaticModel(name, "seed", process, machine, n_threads)
    model.entry("main")
    return model


def static_master_first_touch() -> StaticModel:
    """H001: master callocs ``table``; a node-spanning region then reads it."""
    model = _static_model("master_first_touch")
    model.parallel_region("main", 50, _STATIC_REGION, 4)
    model.alloc("main", 10, "table", _TABLE_ELEMS * 8, kind="calloc")
    model.access(_STATIC_REGION, 110, "table", weight=float(_TABLE_ELEMS),
                 pattern=OmpBlockPattern(_TABLE_ELEMS, 8))
    model.free("main", 40, "table")
    return model


def static_false_sharing_slots() -> StaticModel:
    """H002: per-thread 8B counter slots share one 64B line.

    The region is declared 2 threads wide so it stays on one NUMA node:
    the layout hazard fires without dragging a placement hazard along.
    """
    model = _static_model("false_sharing_slots", n_threads=2)
    model.parallel_region("main", 50, _STATIC_REGION, 2)
    model.alloc("main", 10, "counters", 64)
    model.touch("main", 30, "counters", by="master")
    model.access(_STATIC_REGION, 110, "counters", weight=4096.0,
                 is_store=True, pattern=PerThreadSlotPattern(8))
    model.free("main", 40, "counters")
    return model


def static_parallel_no_free() -> StaticModel:
    """H003: each worker mallocs ``stream`` in the region body, never freed."""
    model = _static_model("parallel_no_free")
    model.parallel_region("main", 50, _STATIC_REGION, 4)
    model.alloc(_STATIC_REGION, 105, "stream", PAGE, in_loop=True)
    model.access(_STATIC_REGION, 110, "stream", weight=2048.0)
    return model


def static_dead_alloc() -> StaticModel:
    """H004: ``ghost`` is allocated in a function no entry point reaches."""
    model = _static_model("dead_alloc")
    model.alloc("orphan_init", 205, "ghost", 32 * 1024)
    model.alloc("main", 10, "work", PAGE)
    model.access("main", 20, "work", weight=1024.0)
    model.free("main", 40, "work")
    return model


def static_clean() -> StaticModel:
    """No hazard: workers first-touch their own chunks, chunk spans are
    far larger than a line, and everything allocated is freed."""
    model = _static_model("clean_static")
    model.parallel_region("main", 50, _STATIC_REGION, 4)
    model.alloc("main", 10, "grid", _TABLE_ELEMS * 8)
    model.touch(_STATIC_REGION, 110, "grid", by="workers")
    model.access(_STATIC_REGION, 110, "grid", weight=float(_TABLE_ELEMS),
                 pattern=OmpBlockPattern(_TABLE_ELEMS, 8))
    model.access(_STATIC_REGION, 111, "grid", weight=float(_TABLE_ELEMS),
                 is_store=True, pattern=OmpBlockPattern(_TABLE_ELEMS, 8))
    model.free("main", 40, "grid")
    return model


def profile_master_first_touch():
    """Dynamic twin of ``static_master_first_touch``: actually run it.

    The master callocs ``table`` (zero-fill commits every page to node
    0); all 4 threads then read their static chunks, so the node-1 half
    of the team fetches remotely.  The marked-event profile this returns
    is what ``hpcview staticcheck --reconcile-run`` uses to confirm the
    H001 prediction.
    """
    from repro.core.profiler import DataCentricProfiler
    from repro.pmu.events import PM_MRK_DATA_FROM_RMEM
    from repro.pmu.marked import MarkedEventEngine

    machine = tiny_machine()
    process = SimProcess(machine, name="defect-master_first_touch")
    profiler = DataCentricProfiler(process).attach()
    process.pmu = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=8, seed=0x51A7)
    main_fn, region_fn = _static_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    table = ctx.calloc(_TABLE_ELEMS * 8, line=10, var="table")

    def worker(wctx: Ctx, tid: int):
        ip = wctx.ip(110)
        for i in omp_chunk(_TABLE_ELEMS, 4, tid):
            wctx.load_ip(table + i * 8, ip)
            if i % 256 == 0:
                yield
        yield

    ctx.parallel(region_fn, worker, 4, line=50)
    ctx.free(table, line=40)
    ctx.leave()
    db = profiler.finalize()
    db.process_name = "defects.master_first_touch"
    db.meta.update(app="defects", defect="master_first_touch", variant="seed")
    return db


# static seed name -> model builder.  Expected outcomes live alongside so
# the golden tests and the CI smoke read one source of truth.
STATIC_SEEDS: dict[str, object] = {
    "master_first_touch": static_master_first_touch,
    "false_sharing_slots": static_false_sharing_slots,
    "parallel_no_free": static_parallel_no_free,
    "dead_alloc": static_dead_alloc,
    "clean_static": static_clean,
}

# seed -> (expected hazard codes, expected flagged variable or None).
STATIC_EXPECTED: dict[str, tuple] = {
    "master_first_touch": (("H001",), "table"),
    "false_sharing_slots": (("H002",), "counters"),
    "parallel_no_free": (("H003",), "stream"),
    "dead_alloc": (("H004",), "ghost"),
    "clean_static": ((), None),
}

# static seeds with a dynamic twin that produces a reconcilable profile.
STATIC_PROFILE_RUNNERS: dict[str, object] = {
    "master_first_touch": profile_master_first_touch,
}


def run_seed(name: str):
    """Run one seed under a sanitizing session; returns its SanitizerReport."""
    from repro.sanitize import SanitizerConfig, sanitizing

    runner, _expected = SEEDS[name]
    config = SanitizerConfig(check_leaks=True)
    with sanitizing(config) as session:
        runner()
    return session.report()


def main() -> int:
    failures = 0
    for name, (_runner, expected) in SEEDS.items():
        report = run_seed(name)
        kinds = sorted(f.kind for f in report.findings)
        want = [expected] if expected else []
        ok = kinds == want
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(f"{status:4s} {name:16s} expected={want} got={kinds}")
    from repro.staticcheck import analyze_model

    for name, builder in STATIC_SEEDS.items():
        report = analyze_model(builder())
        codes = [f.code for f in report.findings]
        want_codes, want_var = STATIC_EXPECTED[name]
        ok = tuple(codes) == want_codes and (
            want_var is None or report.findings[0].variable == want_var
        )
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(f"{status:4s} static:{name:22s} expected={list(want_codes)} got={codes}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
