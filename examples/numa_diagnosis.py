#!/usr/bin/env python3
"""Diagnose and fix a NUMA pathology, end to end (paper §5.4 workflow).

Runs the Streamcluster case study the way an analyst would use the tool:

1. profile the original program with a NUMA-related marked event,
2. read the top-down view: one heap variable (``block``) absorbs almost
   all remote accesses from two OpenMP contexts,
3. follow the allocation call path to the serial master-thread init,
4. apply the fix (parallel first-touch initialization) and measure.

Run:  python examples/numa_diagnosis.py
"""

from repro import MetricKind, StorageClass, advise, render_top_down
from repro.apps import streamcluster


def main() -> None:
    print("== step 1: profile the original run (PM_MRK_DATA_FROM_RMEM) ==")
    profiled = streamcluster.run(
        streamcluster.Config(variant="original", profile=True, pmu_period=24)
    )
    exp = profiled.experiment
    view = exp.top_down(MetricKind.REMOTE, accesses_per_var=2)
    print(render_top_down(view, top_n=2))

    heap_share = view.storage_share(StorageClass.HEAP)
    block = view.find_variable("block")
    print(f"\nheap data: {heap_share:.1%} of remote accesses "
          f"(paper: 98.2%); block alone: {block.share:.1%} (paper: 92.6%)")

    print("\n== step 2: automated guidance ==")
    for rec in advise(exp, MetricKind.REMOTE, top_n=3, min_share=0.02):
        print(" -", rec)

    print("\n== step 3: apply the fix and measure ==")
    original = streamcluster.run(streamcluster.Config(variant="original"))
    fixed = streamcluster.run(streamcluster.Config(variant="parallel-init"))
    print(f"original      : {original.elapsed_seconds * 1e3:8.3f} ms (simulated)")
    print(f"parallel-init : {fixed.elapsed_seconds * 1e3:8.3f} ms (simulated)")
    print(f"speedup       : {fixed.speedup_over(original):.2f}x  (paper: 1.28x)")

    mm_orig = original.machines[0].hierarchy.memmgr
    mm_fixed = fixed.machines[0].hierarchy.memmgr
    print(f"\nDRAM traffic by NUMA node, original: {mm_orig.dram_accesses}")
    print(f"DRAM traffic by NUMA node, fixed   : {mm_fixed.dram_accesses}")
    print("(the fix spreads one controller's load across all four)")


if __name__ == "__main__":
    main()
