#!/usr/bin/env python3
"""The §7 extensions in action: stack attribution + the hpcview CLI.

A thread-local stack workspace is a blind spot for the SC'13 tool (stack
data lands in *unknown data*).  This example enables the reproduction's
stack-tracking extension, profiles a kernel whose hot data is a named
stack buffer, saves the profile to disk, and inspects it with the
``hpcview`` command-line viewer.

Run:  python examples/stack_and_cli.py
"""

import tempfile
from pathlib import Path

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    IBSEngine,
    LoadModule,
    MetricKind,
    ProfilerConfig,
    SimProcess,
    SourceFile,
    intel_ivybridge,
    render_top_down,
)
from repro.tools import hpcview


def profile_once(track_stack: bool) -> DataCentricProfiler:
    machine = intel_ivybridge()
    process = SimProcess(machine, name="stackdemo")
    src = SourceFile("filter.c", {12: "acc += window[(i*stride) % W];"})
    exe = LoadModule("filter.exe", is_executable=True)
    main_fn = exe.add_function("apply_filter", src, 1, 30)
    process.load_module(exe)

    profiler = DataCentricProfiler(
        process, ProfilerConfig(track_stack=track_stack)
    ).attach()
    process.pmu = IBSEngine(period=16, seed=4)

    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    # A large on-stack window buffer — a compiler-described local.
    window = ctx.declare_stack_var("window", 32 * 1024, line=5)
    ip = ctx.ip(12)

    def kern():
        for i in range(8000):
            ctx.load_ip(window + (i * 520) % (32 * 1024), ip)
            ctx.compute(3)
            if i % 32 == 0:
                yield

    process.run_serial(kern())
    ctx.leave()
    return profiler


def main() -> None:
    print("== without the extension (the paper's behaviour) ==")
    exp = Analyzer("off").add(profile_once(False).finalize()).analyze()
    print(render_top_down(exp.top_down(MetricKind.LATENCY), top_n=2))
    print("-> the hot buffer is invisible: all latency is 'unknown data'\n")

    print("== with ProfilerConfig(track_stack=True) (§7 extension) ==")
    profiler = profile_once(True)
    exp = Analyzer("on").add(profiler.finalize()).analyze()
    print(render_top_down(exp.top_down(MetricKind.LATENCY), top_n=2))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "stackdemo.rpdb"
        size = hpcview.save_profile(profiler.finalize(), path)
        print(f"\n== saved profile to {path.name} ({size} bytes); "
              "inspecting with the hpcview CLI ==")
        hpcview.main(["table", str(path), "--metric", "latency", "-n", "3"])
        print()
        hpcview.main(["advise", str(path), "--metric", "latency"])


if __name__ == "__main__":
    main()
