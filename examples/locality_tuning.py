#!/usr/bin/env python3
"""Spatial-locality tuning with latency profiles (paper §5.2 workflow).

Sweep3D's Fortran arrays are traversed against their column-major layout:
every inner-loop access strides ``it*jt`` elements.  The latency view
pinpoints the arrays and the exact accesses; the fix permutes the array
dimensions.  This example runs the original, reads the profile, applies
the fix, and verifies the ~15% whole-program win — all on the pure-MPI
configuration where NUMA provably plays no role.

Run:  python examples/locality_tuning.py
"""

from repro import MetricKind, render_variable_table
from repro.apps import sweep3d


def main() -> None:
    n_ranks = 8  # of the paper's 48 identical ranks

    print("== step 1: profile with IBS (data-fetch latency) ==")
    profiled = sweep3d.run(
        sweep3d.Config(variant="original", n_ranks=n_ranks, profile=True,
                       pmu_period=256)
    )
    exp = profiled.experiment
    view = exp.top_down(MetricKind.LATENCY, accesses_per_var=2)
    print(render_variable_table(view, top_n=4))

    flux = view.find_variable("Flux")
    hot = flux.accesses[0]
    print(f"\nhot access: {hot.label}")
    print(f"  source   : {hot.line_text!r}")
    print(f"  share    : {hot.share:.1%} of total latency (paper: 28.6%)")
    print(f"  remote   : {flux.remote_fraction:.0%} — pure MPI, no NUMA issue")

    print("\n== step 2: the fix — permute Flux/Src/Face dimensions ==")
    original = sweep3d.run(sweep3d.Config(variant="original", n_ranks=n_ranks))
    transposed = sweep3d.run(sweep3d.Config(variant="transposed", n_ranks=n_ranks))
    print(f"original   : {original.elapsed_seconds * 1e3:8.3f} ms (simulated)")
    print(f"transposed : {transposed.elapsed_seconds * 1e3:8.3f} ms (simulated)")
    print(f"speedup    : {transposed.speedup_over(original):.2f}x (paper: 1.15x)")

    h_orig = original.machines[0].hierarchy
    h_opt = transposed.machines[0].hierarchy
    print(f"\nprefetch-covered misses: {h_orig.prefetch_hits} -> {h_opt.prefetch_hits}")
    print("(unit stride re-enables the stream prefetcher; TLB pressure drops too)")


if __name__ == "__main__":
    main()
