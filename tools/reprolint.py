#!/usr/bin/env python
"""reprolint — AST lint for this repo's determinism and hygiene invariants.

The simulator's core guarantee is bit-reproducibility: the same config
must produce byte-identical profiles on every run (that is what the
merge/codec tests pin).  Nondeterminism sneaking into ``src/repro`` —
wall-clock reads, ambient ``random`` — would break that silently, so it
is banned at the AST level rather than hunted in code review.

Rules:
  R001  bare ``except:`` (swallows SystemExit/KeyboardInterrupt and bugs)
  R002  mutable default argument (list/dict/set literals or constructors)
  R003  nondeterminism: ``random`` module, ``time.time``, ``datetime.now``,
        ``datetime.utcnow``, ``date.today`` — anywhere except the seeded
        RNG facade ``src/repro/util/rng.py``
  R004  ``print`` calls inside ``src/repro`` outside ``src/repro/tools``
        (library code must return data; only CLIs talk to stdout)
  R005  wall-clock access inside ``src/repro/obs`` outside the clock
        facade ``src/repro/obs/clock.py`` — the telemetry layer must take
        injected clocks so traces can be made deterministic; any ``time``
        import or ``time.*`` call elsewhere in the package is banned
  R006  ``sys.exit()`` / ``raise SystemExit`` inside ``src/repro`` outside
        ``src/repro/tools`` — library code must raise typed exceptions
        (repro.errors) and leave process exit codes to the CLIs
  R007  integer-literal index into a data-source level array
        (``level_counts``/``levels``/``counts``/``hop_counts``) inside
        ``src/repro`` — use the ``LVL_*`` constants from
        ``repro.machine.hierarchy`` so reordering the hierarchy cannot
        silently skew derived reports
  R008  comparison against a bare float literal inside
        ``src/repro/staticcheck`` or ``src/repro/core/derived.py`` —
        analysis thresholds must be registered formula constants
        (``repro.metrics.boundness``) resolved through the override
        registry, never hand-rolled magic numbers; integer literals
        (loop bounds, counts) stay legal
  R009  integer source-line literal passed to a model declaration call
        (``alloc``/``call``/``touch``/``access``/``free``/
        ``parallel_region``) inside a ``static_model()`` body — line
        anchors must be module-level named constants shared with the
        kernel, so the extraction drift gate
        (``repro.staticcheck.extract``) and the declarations can never
        disagree about where a site lives

Files that cannot be linted are findings, not crashes: a syntax error,
a non-UTF-8 byte sequence, or an unreadable file reports as ``R000``
and exits 1 like any other finding.

Usage: ``python tools/reprolint.py [paths...]`` (default: src tests
benchmarks examples tools).  Prints ``file:line: RULE message`` per
finding; exit status 1 when anything was found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_TARGETS = ("src", "tests", "benchmarks", "examples", "tools")

# R003: calls banned as (module-ish value, attribute) pairs.
_BANNED_CALLS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

# R007: arrays indexed by data-source level (or NUMA hop distance) whose
# ordering is defined once, by the LVL_* constants in repro.machine.hierarchy.
_LEVEL_ARRAYS = {"level_counts", "levels", "counts", "hop_counts"}

# R009: StaticModel declaration methods whose second positional argument
# (or ``line=`` keyword) is a source line number.
_MODEL_LINE_METHODS = {
    "alloc", "call", "touch", "access", "free", "parallel_region",
}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray", "defaultdict"}
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: Path,
        in_library: bool,
        rng_exempt: bool,
        obs_restricted: bool = False,
        threshold_restricted: bool = False,
    ) -> None:
        self.path = path
        self.in_library = in_library  # under src/repro but not src/repro/tools
        self.rng_exempt = rng_exempt  # the seeded-RNG facade itself
        # under src/repro/obs but not the clock facade: no wall-clock access
        self.obs_restricted = obs_restricted
        # analysis code whose thresholds must come from the formula registry
        self.threshold_restricted = threshold_restricted
        # >0 while visiting the body of a ``static_model`` definition
        # (including nested helpers), where R009 applies.
        self._static_model_depth = 0
        self.findings: list[tuple[int, str, str]] = []

    def _add(self, line: int, rule: str, message: str) -> None:
        self.findings.append((line, rule, message))

    # R001 ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(node.lineno, "R001", "bare `except:` — name the exception")
        self.generic_visit(node)

    # R002 ------------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self._add(
                    default.lineno, "R002",
                    f"mutable default argument in {node.name}() — use None",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        if node.name == "static_model":
            self._static_model_depth += 1
            self.generic_visit(node)
            self._static_model_depth -= 1
            return
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # R003 / R005 ------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if not self.rng_exempt and root == "random":
                self._add(
                    node.lineno, "R003",
                    "import of `random` — use repro.util.rng (seeded)",
                )
            if self.obs_restricted and root == "time":
                self._add(
                    node.lineno, "R005",
                    "import of `time` in repro.obs — only the clock facade "
                    "(repro/obs/clock.py) may read wall clocks",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            root = node.module.split(".")[0]
            if not self.rng_exempt and root == "random":
                self._add(
                    node.lineno, "R003",
                    "import from `random` — use repro.util.rng (seeded)",
                )
            if self.obs_restricted and root == "time":
                self._add(
                    node.lineno, "R005",
                    "import from `time` in repro.obs — only the clock facade "
                    "(repro/obs/clock.py) may read wall clocks",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            not self.rng_exempt
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            pair = (func.value.id, func.attr)
            if pair in _BANNED_CALLS:
                self._add(
                    node.lineno, "R003",
                    f"nondeterministic call {pair[0]}.{pair[1]}() — "
                    "pass timestamps/seeds in explicitly",
                )
            if self.obs_restricted and func.value.id == "time":
                self._add(
                    node.lineno, "R005",
                    f"wall-clock call time.{func.attr}() in repro.obs — "
                    "inject a repro.obs.clock.Clock instead",
                )
        # R004
        if (
            self.in_library
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._add(
                node.lineno, "R004",
                "print() in library code — return data, render in repro.tools",
            )
        # R006 (the call form; `raise SystemExit` is caught in visit_Raise)
        if (
            self.in_library
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "sys"
            and func.attr == "exit"
        ):
            self._add(
                node.lineno, "R006",
                "sys.exit() in library code — raise a repro.errors exception; "
                "only CLIs in repro.tools choose exit codes",
            )
        # R009
        if (
            self._static_model_depth
            and isinstance(func, ast.Attribute)
            and func.attr in _MODEL_LINE_METHODS
        ):
            line_arg = None
            if len(node.args) > 1:
                line_arg = node.args[1]
            for kw in node.keywords:
                if kw.arg == "line":
                    line_arg = kw.value
            if (
                isinstance(line_arg, ast.Constant)
                and isinstance(line_arg.value, int)
                and not isinstance(line_arg.value, bool)
            ):
                self._add(
                    line_arg.lineno, "R009",
                    f"hand-maintained line literal {line_arg.value} in "
                    f"static_model() {func.attr}() — use a module-level "
                    "anchor constant shared with the kernel so the "
                    "extraction drift gate pins it",
                )
        self.generic_visit(node)

    # R007 ------------------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        base = node.value
        name = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        index = node.slice
        if (
            self.in_library
            and name in _LEVEL_ARRAYS
            and isinstance(index, ast.Constant)
            and isinstance(index.value, int)
            and not isinstance(index.value, bool)
        ):
            self._add(
                node.lineno, "R007",
                f"integer-literal index `{name}[{index.value}]` — use the "
                "LVL_* constants from repro.machine.hierarchy",
            )
        self.generic_visit(node)

    # R008 ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if self.threshold_restricted:
            for side in [node.left, *node.comparators]:
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                ):
                    self._add(
                        side.lineno, "R008",
                        f"comparison against bare float literal {side.value!r} "
                        "— register the threshold as a formula constant in "
                        "repro.metrics.boundness and resolve it through the "
                        "override registry",
                    )
        self.generic_visit(node)

    # R006 ------------------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if self.in_library and name == "SystemExit":
            self._add(
                node.lineno, "R006",
                "raise SystemExit in library code — raise a repro.errors "
                "exception; only CLIs in repro.tools choose exit codes",
            )
        self.generic_visit(node)


def lint_source(
    source: str,
    path: Path,
    in_library: bool = False,
    rng_exempt: bool = False,
    obs_restricted: bool = False,
    threshold_restricted: bool = False,
) -> list[tuple[int, str, str]]:
    """Lint one file's source text; returns (line, rule, message) findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, "R000", f"syntax error: {exc.msg}")]
    visitor = _Visitor(
        path, in_library=in_library, rng_exempt=rng_exempt,
        obs_restricted=obs_restricted,
        threshold_restricted=threshold_restricted,
    )
    visitor.visit(tree)
    return sorted(visitor.findings)


def _classify(path: Path) -> tuple[bool, bool, bool, bool]:
    parts = path.as_posix()
    in_repro = "src/repro/" in parts or parts.startswith("src/repro/")
    in_tools = "src/repro/tools/" in parts
    rng_exempt = parts.endswith("repro/util/rng.py")
    in_obs = "src/repro/obs/" in parts
    obs_restricted = in_obs and not parts.endswith("repro/obs/clock.py")
    threshold_restricted = (
        "src/repro/staticcheck/" in parts
        or parts.endswith("repro/core/derived.py")
    )
    return (
        (in_repro and not in_tools),
        rng_exempt,
        obs_restricted,
        threshold_restricted,
    )


def lint_paths(targets: list[Path]) -> list[str]:
    reports: list[str] = []
    for target in targets:
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for file in files:
            (
                in_library, rng_exempt, obs_restricted, threshold_restricted,
            ) = _classify(file)
            try:
                source = file.read_text(encoding="utf-8")
            except UnicodeDecodeError as exc:
                reports.append(
                    f"{file}:0: R000 not valid UTF-8 "
                    f"(byte offset {exc.start}: {exc.reason})"
                )
                continue
            except OSError as exc:
                reports.append(f"{file}:0: R000 unreadable: {exc}")
                continue
            findings = lint_source(
                source, file,
                in_library=in_library, rng_exempt=rng_exempt,
                obs_restricted=obs_restricted,
                threshold_restricted=threshold_restricted,
            )
            for line, rule, message in findings:
                reports.append(f"{file}:{line}: {rule} {message}")
    return reports


def main(argv: list[str] | None = None) -> int:
    args = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_TARGETS)
    targets = []
    for arg in args:
        path = Path(arg)
        if path.exists():
            targets.append(path)
    reports = lint_paths(targets)
    for report in reports:
        print(report)
    if reports:
        print(f"reprolint: {len(reports)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
