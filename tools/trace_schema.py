#!/usr/bin/env python
"""Minimal validators for the telemetry layer's export formats.

Two checkers, used by the CI smoke job and tests/test_obs.py:

* :func:`validate_trace` — structural check of Chrome trace-event JSON
  as emitted by ``repro.obs.trace.TraceWriter`` (the subset Perfetto
  and chrome://tracing rely on: a ``traceEvents`` list of objects with
  per-phase required keys and sane types).
* :func:`validate_prometheus` — line-level check of Prometheus text
  exposition: HELP/TYPE headers, parseable sample lines, every sample
  tied to a declared metric, histogram series complete.

Usage::

    python tools/trace_schema.py trace.json
    python tools/trace_schema.py --prom metrics.prom
    python tools/trace_schema.py trace.json --require-cats phase,driver

Exit status 1 when any file fails validation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

_COMPLETE_KEYS = ("name", "cat", "ts", "dur", "pid", "tid")
_INSTANT_KEYS = ("name", "cat", "ts", "pid", "tid")
_METADATA_KEYS = ("name", "pid", "tid", "args")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _check_keys(event: dict, keys, index: int, errors: list[str]) -> bool:
    ok = True
    for key in keys:
        if key not in event:
            errors.append(f"event[{index}]: ph {event.get('ph')!r} missing {key!r}")
            ok = False
    return ok


def validate_trace(payload, require_cats: set[str] | None = None) -> list[str]:
    """Validate a parsed trace JSON object; returns a list of errors."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    if not events:
        errors.append("traceEvents is empty")
    seen_cats: set[str] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event[{i}]: not an object")
            continue
        ph = event.get("ph")
        if ph == "X":
            if _check_keys(event, _COMPLETE_KEYS, i, errors):
                if not isinstance(event["ts"], (int, float)):
                    errors.append(f"event[{i}]: ts must be a number")
                if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                    errors.append(f"event[{i}]: dur must be a number >= 0")
                seen_cats.add(event["cat"])
        elif ph == "i":
            if _check_keys(event, _INSTANT_KEYS, i, errors):
                seen_cats.add(event["cat"])
        elif ph == "M":
            if _check_keys(event, _METADATA_KEYS, i, errors):
                if not isinstance(event["args"], dict) or "name" not in event["args"]:
                    errors.append(f"event[{i}]: metadata args must carry a name")
        else:
            errors.append(f"event[{i}]: unsupported ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                errors.append(f"event[{i}]: {key} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"event[{i}]: args must be an object")
        if not isinstance(event.get("name"), str):
            errors.append(f"event[{i}]: name must be a string")
    if require_cats:
        missing = sorted(require_cats - seen_cats)
        if missing:
            errors.append(f"missing required span categories: {', '.join(missing)}")
    return errors


def validate_prometheus(text: str) -> tuple[list[str], int]:
    """Validate Prometheus text exposition; returns (errors, sample_count)."""
    errors: list[str] = []
    types: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            if len(line.split(None, 3)) < 4:
                errors.append(f"line {lineno}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: malformed TYPE")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unknown comment form")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count|p50|p95|p99)$", "", name)
        if name not in types and base not in types:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE header")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            if body and _LABEL_RE.sub("", body).strip(", "):
                errors.append(f"line {lineno}: malformed labels {labels!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                errors.append(f"line {lineno}: bad value {value!r}")
        samples += 1
    if samples == 0:
        errors.append("no samples found")
    return errors, samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate trace-event JSON / Prometheus text exports"
    )
    parser.add_argument("files", nargs="+", help="files to validate")
    parser.add_argument("--prom", action="store_true",
                        help="treat files as Prometheus text (default: JSON)")
    parser.add_argument("--require-cats", default=None, metavar="CATS",
                        help="comma list of span categories the trace must cover")
    args = parser.parse_args(argv)

    require = (
        {c.strip() for c in args.require_cats.split(",") if c.strip()}
        if args.require_cats
        else None
    )
    failed = False
    for file in args.files:
        text = Path(file).read_text(encoding="utf-8")
        if args.prom:
            errors, samples = validate_prometheus(text)
            summary = f"{samples} sample(s)"
        else:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                print(f"{file}: invalid JSON: {exc}")
                failed = True
                continue
            errors = validate_trace(payload, require_cats=require)
            summary = f"{len(payload.get('traceEvents', []))} event(s)"
        if errors:
            failed = True
            for error in errors:
                print(f"{file}: {error}")
        else:
            print(f"{file}: OK ({summary})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
